(* Benchmark harness: regenerates every experiment in EXPERIMENTS.md.

   The paper (Ivanyos–Magniez–Santha, SPAA 2001) is a theory paper
   with no tables or figures; its evaluation is a set of complexity
   claims.  Each experiment E1–E8 below measures one claim's *shape*:
   oracle-query and time scaling of the quantum algorithm against the
   classical baseline, on the group families the paper names.

     dune exec bench/main.exe              -- all experiment tables
     dune exec bench/main.exe -- e3 e5     -- selected experiments
     dune exec bench/main.exe -- micro     -- Bechamel micro-benchmarks

   Besides the text tables, a full or selected run writes every table
   to BENCH_<rev>.json (rev = HSP_BENCH_REV, else the git HEAD, else
   "worktree") so runs are diffable across revisions by machine.

   Absolute numbers are simulator-dependent; the claims under test are
   the growth shapes (poly(log |G|) or poly(small parameter) for the
   quantum algorithms vs Theta(|G|) classically). *)

open Groups
open Hsp

let rng = Random.State.make [| 20260705 |]

(* Every header/row pair is mirrored into [tables] so the whole run can
   be dumped as machine-readable JSON at exit. *)
let tables : (string * string list * string list list ref) list ref = ref []

let header title columns =
  Printf.printf "\n== %s ==\n" title;
  Printf.printf "%s\n" (String.concat " | " columns);
  Printf.printf "%s\n" (String.make (String.length (String.concat " | " columns)) '-');
  tables := (title, List.map String.trim columns, ref []) :: !tables

let row cells =
  Printf.printf "%s\n%!" (String.concat " | " cells);
  match !tables with
  | (_, _, rows) :: _ -> rows := List.map String.trim cells :: !rows
  | [] -> ()

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let bench_rev () =
  match Sys.getenv_opt "HSP_BENCH_REV" with
  | Some r when r <> "" -> r
  | _ -> (
      try
        let ic = Unix.open_process_in "git rev-parse --short=12 HEAD 2>/dev/null" in
        let line = try input_line ic with End_of_file -> "" in
        match (Unix.close_process_in ic, line) with
        | Unix.WEXITED 0, r when r <> "" -> r
        | _ -> "worktree"
      with _ -> "worktree")

let write_json () =
  let rev = bench_rev () in
  let file = Printf.sprintf "BENCH_%s.json" rev in
  let oc = open_out file in
  let strings cells =
    String.concat ", " (List.map (fun c -> Printf.sprintf "\"%s\"" (json_escape c)) cells)
  in
  Printf.fprintf oc "{\n  \"rev\": \"%s\",\n  \"harness\": \"bench/main.exe\",\n  \"tables\": [" (json_escape rev);
  let first = ref true in
  List.iter
    (fun (title, columns, rows) ->
      if not !first then output_string oc ",";
      first := false;
      Printf.fprintf oc "\n    {\n      \"title\": \"%s\",\n      \"columns\": [%s],\n      \"rows\": ["
        (json_escape title) (strings columns);
      let first_row = ref true in
      List.iter
        (fun cells ->
          if not !first_row then output_string oc ",";
          first_row := false;
          Printf.fprintf oc "\n        [%s]" (strings cells))
        (List.rev !rows);
      Printf.fprintf oc "\n      ]\n    }")
    (List.rev !tables);
  Printf.fprintf oc "\n  ]\n}\n";
  close_out oc;
  Printf.printf "\nwrote %s (%d tables)\n" file (List.length !tables)

let fmt_i = Printf.sprintf "%8d"
let fmt_s = Printf.sprintf "%8s"
let fmt_f = Printf.sprintf "%8.3f"

(* Cost-claim gate (Analysis.Cost_check): every smoke and E10 row is
   checked against its theorem's query/gate budget; the run exits
   nonzero if any row exceeds it, so CI catches cost regressions the
   same way it catches wrong answers. *)
let claim_violations = ref 0

let claim_cell label ~params ~queries metrics =
  match Analysis.Cost_check.find label with
  | None -> "-"
  | Some claim ->
      let v = Analysis.Cost_check.check_snapshot claim params ~queries metrics in
      if not v.Analysis.Cost_check.ok then begin
        incr claim_violations;
        Printf.printf "claim violation: %s\n"
          (Format.asprintf "%a" Analysis.Cost_check.pp v)
      end;
      Analysis.Cost_check.cell v

(* Wall clock, not [Sys.time]: CPU seconds undercount blocked time and
   the JSON output is meant to be comparable to what a user observes. *)
let time_it f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* E1: Abelian HSP (Theorem 3 / Lemma 9) — Simon instances            *)
(* ------------------------------------------------------------------ *)

let e1 () =
  header "E1: Abelian HSP on Z_2^n (Simon) — quantum O(n) queries vs classical Theta(2^n)"
    [ fmt_s "n"; fmt_s "|G|"; fmt_s "q-quant"; fmt_s "q-class"; fmt_s "classical"; fmt_s "ok"; fmt_s "sec" ];
  List.iter
    (fun n ->
      let mask = Array.init n (fun i -> if i mod 3 = 0 then 1 else 0) in
      let inst = Instances.simon ~n ~mask in
      let gens, sec =
        time_it (fun () -> Abelian_hsp.solve rng inst.Instances.group inst.Instances.hiding)
      in
      let c, q = Hiding.total_queries inst.Instances.hiding in
      let ok = Group.subgroup_equal inst.Instances.group gens inst.Instances.hidden_gens in
      (* classical baseline on a fresh instance *)
      let inst2 = Instances.simon ~n ~mask in
      ignore (Classical.brute_force inst2.Instances.group inst2.Instances.hiding);
      let c_base, _ = Hiding.total_queries inst2.Instances.hiding in
      row
        [ fmt_i n; fmt_i (1 lsl n); fmt_i q; fmt_i c; fmt_i c_base;
          fmt_s (string_of_bool ok); fmt_f sec ])
    [ 3; 4; 5; 6; 7; 8; 9; 10; 11; 12 ];
  header "E1b: Abelian HSP on mixed cyclic products"
    [ fmt_s "group"; fmt_s "|G|"; fmt_s "q-quant"; fmt_s "ok"; fmt_s "sec" ];
  List.iter
    (fun dims ->
      let inst = Instances.abelian_random rng ~dims in
      let gens, sec =
        time_it (fun () -> Abelian_hsp.solve rng inst.Instances.group inst.Instances.hiding)
      in
      let _, q = Hiding.total_queries inst.Instances.hiding in
      let ok = Group.subgroup_equal inst.Instances.group gens inst.Instances.hidden_gens in
      row
        [ fmt_s (String.concat "x" (List.map string_of_int (Array.to_list dims)));
          fmt_i (Array.fold_left ( * ) 1 dims); fmt_i q; fmt_s (string_of_bool ok); fmt_f sec ])
    [ [| 16 |]; [| 4; 6 |]; [| 9; 8 |]; [| 5; 5; 4 |]; [| 2; 3; 4; 5 |] ];
  (* ablation: how many Fourier-sampling rounds does exact recovery
     need?  (The Las Vegas solver verifies and resamples; this shows
     why its first batch of ~log|G| rounds almost always suffices.) *)
  header "E1c: ablation — recovery rate vs number of sampling rounds (Simon n=6, 50 trials)"
    [ fmt_s "rounds"; fmt_s "recovered"; fmt_s "rate" ];
  let n = 6 in
  let mask = [| 1; 0; 1; 1; 0; 1 |] in
  let inst = Instances.simon ~n ~mask in
  let dims = Array.make n 2 in
  let f tuple = inst.Instances.hiding.Hiding.raw tuple in
  let draw = Quantum.Coset_state.sampler ~dims ~f ~queries:inst.Instances.hiding.Hiding.quantum () in
  List.iter
    (fun rounds ->
      let hits = ref 0 in
      for _ = 1 to 50 do
        let samples = List.init rounds (fun _ -> draw rng) in
        let gens = Quantum.Coset_state.annihilator_subgroup ~dims samples in
        if Group.subgroup_equal inst.Instances.group gens inst.Instances.hidden_gens then
          incr hits
      done;
      row [ fmt_i rounds; fmt_i !hits; fmt_f (float_of_int !hits /. 50.0) ])
    [ 1; 2; 3; 4; 5; 6; 8; 10; 14 ]

(* ------------------------------------------------------------------ *)
(* E2: Shor oracles (Theorem 4 hypotheses)                            *)
(* ------------------------------------------------------------------ *)

let e2 () =
  header "E2a: quantum order finding in Z_N^* — queries stay flat as N grows"
    [ fmt_s "N"; fmt_s "elt"; fmt_s "order"; fmt_s "queries"; fmt_s "sec" ];
  List.iter
    (fun (n, a) ->
      let queries = Quantum.Query.create () in
      let o, sec =
        time_it (fun () ->
            Quantum.Shor.find_order rng
              ~pow:(fun k -> Numtheory.Arith.powmod a k n)
              ~order_bound:n ~queries)
      in
      row
        [ fmt_i n; fmt_i a;
          fmt_s (match o with Some o -> string_of_int o | None -> "fail");
          fmt_i (Quantum.Query.count queries); fmt_f sec ])
    [ (15, 2); (25, 2); (77, 3); (123, 2); (255, 2); (501, 5) ];
  header "E2b: factoring via order finding"
    [ fmt_s "N"; fmt_s "factors"; fmt_s "sec" ];
  List.iter
    (fun n ->
      let r, sec = time_it (fun () -> Quantum.Shor.factor rng n) in
      row
        [ fmt_i n;
          fmt_s (match r with Some (a, b) -> Printf.sprintf "%d*%d" a b | None -> "fail");
          fmt_f sec ])
    [ 15; 21; 35; 91; 143; 221 ];
  header "E2c: discrete log in Z_p^* (Abelian HSP form)"
    [ fmt_s "p"; fmt_s "base"; fmt_s "planted"; fmt_s "found"; fmt_s "sec" ];
  List.iter
    (fun (p, g, l) ->
      let h = Numtheory.Arith.powmod g l p in
      let found, sec = time_it (fun () -> Dlog.discrete_log rng ~p ~g ~h) in
      row
        [ fmt_i p; fmt_i g; fmt_i l;
          fmt_s (match found with Some x -> string_of_int x | None -> "fail");
          fmt_f sec ])
    [ (23, 5, 9); (101, 2, 37); (211, 3, 113); (401, 3, 251) ]

(* ------------------------------------------------------------------ *)
(* E3: hidden normal subgroups (Theorem 8)                            *)
(* ------------------------------------------------------------------ *)

let e3 () =
  header
    "E3: hidden normal subgroup (Thm 8) — f-queries scale with |G/N|, classical with |G|"
    [ fmt_s "group"; fmt_s "|G|"; fmt_s "|G/N|"; fmt_s "q-class"; fmt_s "classical"; fmt_s "ok"; fmt_s "sec" ];
  let run_dihedral n d =
    let inst = Instances.dihedral_rotation ~n ~d in
    let res, sec =
      time_it (fun () -> Normal_hsp.solve rng inst.Instances.group inst.Instances.hiding)
    in
    let c, _ = Hiding.total_queries inst.Instances.hiding in
    let ok =
      Group.subgroup_equal inst.Instances.group res.Normal_hsp.generators
        inst.Instances.hidden_gens
    in
    let inst2 = Instances.dihedral_rotation ~n ~d in
    ignore (Classical.brute_force inst2.Instances.group inst2.Instances.hiding);
    let c_base, _ = Hiding.total_queries inst2.Instances.hiding in
    row
      [ fmt_s (Printf.sprintf "D_%d/s^%d" n d); fmt_i (2 * n);
        fmt_i res.Normal_hsp.quotient_order; fmt_i c; fmt_i c_base;
        fmt_s (string_of_bool ok); fmt_f sec ]
  in
  (* growing group, fixed quotient: queries should stay flat *)
  List.iter (fun n -> run_dihedral n 2) [ 12; 24; 48; 96; 192 ];
  (* fixed group, growing quotient: queries should grow with |G/N| *)
  List.iter (fun d -> run_dihedral 96 d) [ 2; 4; 8; 16 ];
  (* permutation groups *)
  let inst = Instances.perm_normal_klein () in
  let res, sec =
    time_it (fun () -> Normal_hsp.solve rng inst.Instances.group inst.Instances.hiding)
  in
  let c, _ = Hiding.total_queries inst.Instances.hiding in
  let ok =
    Group.subgroup_equal inst.Instances.group res.Normal_hsp.generators
      inst.Instances.hidden_gens
  in
  row
    [ fmt_s "S4/V4"; fmt_i 24; fmt_i res.Normal_hsp.quotient_order; fmt_i c; fmt_i 25;
      fmt_s (string_of_bool ok); fmt_f sec ];
  let s4 = Perm.symmetric 4 in
  let a4_inst = Instances.make ~name:"A4" s4 (Group.elements (Perm.alternating 4)) in
  let res, sec =
    time_it (fun () -> Normal_hsp.solve rng s4 a4_inst.Instances.hiding)
  in
  let c, _ = Hiding.total_queries a4_inst.Instances.hiding in
  let ok = Group.subgroup_equal s4 res.Normal_hsp.generators a4_inst.Instances.hidden_gens in
  row
    [ fmt_s "S4/A4"; fmt_i 24; fmt_i res.Normal_hsp.quotient_order; fmt_i c; fmt_i 25;
      fmt_s (string_of_bool ok); fmt_f sec ];
  (* solvable metacyclic groups: Frobenius and affine translations *)
  let metacyclic name inst size =
    let res, sec =
      time_it (fun () -> Normal_hsp.solve rng inst.Instances.group inst.Instances.hiding)
    in
    let c, _ = Hiding.total_queries inst.Instances.hiding in
    let ok =
      Group.subgroup_equal inst.Instances.group res.Normal_hsp.generators
        inst.Instances.hidden_gens
    in
    row
      [ fmt_s name; fmt_i size; fmt_i res.Normal_hsp.quotient_order; fmt_i c; fmt_i (size + 1);
        fmt_s (string_of_bool ok); fmt_f sec ]
  in
  metacyclic "F21/Z7" (Instances.frobenius_translations ~p:7 ~q:3) 21;
  metacyclic "F55/Z11" (Instances.frobenius_translations ~p:11 ~q:5) 55;
  metacyclic "F253/Z23" (Instances.frobenius_translations ~p:23 ~q:11) 253;
  metacyclic "AGL5/Z5" (Instances.affine_translations ~p:5) 20;
  metacyclic "AGL13/Z13" (Instances.affine_translations ~p:13) 156

(* ------------------------------------------------------------------ *)
(* E4: small commutator subgroup (Theorem 11 / Corollary 12)          *)
(* ------------------------------------------------------------------ *)

let e4 () =
  header "E4: HSP in extra-special H_p (Cor 12) — cost poly(input + p), classical p^3"
    [ fmt_s "p"; fmt_s "|G|"; fmt_s "|G'|"; fmt_s "q-quant"; fmt_s "q-class"; fmt_s "classical"; fmt_s "ok"; fmt_s "sec" ];
  List.iter
    (fun p ->
      let inst = Instances.heisenberg_random rng ~p ~m:1 in
      let res, sec =
        time_it (fun () ->
            Small_commutator.solve rng inst.Instances.group inst.Instances.hiding)
      in
      let c, q = Hiding.total_queries inst.Instances.hiding in
      let ok =
        Group.subgroup_equal inst.Instances.group res.Small_commutator.generators
          inst.Instances.hidden_gens
      in
      row
        [ fmt_i p; fmt_i (p * p * p); fmt_i res.Small_commutator.commutator_order;
          fmt_i q; fmt_i c; fmt_i (p * p * p); fmt_s (string_of_bool ok); fmt_f sec ])
    [ 2; 3; 5; 7; 11 ];
  header "E4b: ablation — direct Abelian sampling vs the literal Theorem-8 route"
    [ fmt_s "p"; fmt_s "route"; fmt_s "q-class"; fmt_s "ok"; fmt_s "sec" ];
  List.iter
    (fun p ->
      let inst = Instances.heisenberg_random rng ~p ~m:1 in
      let res, sec =
        time_it (fun () ->
            Small_commutator.solve rng inst.Instances.group inst.Instances.hiding)
      in
      let c, _ = Hiding.total_queries inst.Instances.hiding in
      let ok =
        Group.subgroup_equal inst.Instances.group res.Small_commutator.generators
          inst.Instances.hidden_gens
      in
      row [ fmt_i p; fmt_s "abelian"; fmt_i c; fmt_s (string_of_bool ok); fmt_f sec ];
      let inst = Instances.heisenberg_random rng ~p ~m:1 in
      let res, sec =
        time_it (fun () ->
            Small_commutator.solve_via_theorem8 rng inst.Instances.group inst.Instances.hiding)
      in
      let c, _ = Hiding.total_queries inst.Instances.hiding in
      let ok =
        Group.subgroup_equal inst.Instances.group res.Small_commutator.generators
          inst.Instances.hidden_gens
      in
      row [ fmt_i p; fmt_s "thm8"; fmt_i c; fmt_s (string_of_bool ok); fmt_f sec ])
    [ 3; 5 ];
  header "E4c: dicyclic Q_4n — |G'| = n grows with the group (no separation, still correct)"
    [ fmt_s "n"; fmt_s "|G|"; fmt_s "|G'|"; fmt_s "q-quant"; fmt_s "q-class"; fmt_s "ok"; fmt_s "sec" ];
  List.iter
    (fun n ->
      let inst = Instances.dicyclic_random rng ~n in
      let res, sec =
        time_it (fun () ->
            Small_commutator.solve rng inst.Instances.group inst.Instances.hiding)
      in
      let c, q = Hiding.total_queries inst.Instances.hiding in
      let ok =
        Group.subgroup_equal inst.Instances.group res.Small_commutator.generators
          inst.Instances.hidden_gens
      in
      row
        [ fmt_i n; fmt_i (4 * n); fmt_i res.Small_commutator.commutator_order; fmt_i q;
          fmt_i c; fmt_s (string_of_bool ok); fmt_f sec ])
    [ 2; 4; 8; 16; 32 ]

(* ------------------------------------------------------------------ *)
(* E5: Theorem 13 general case — wreath products, vs Rötteler–Beth    *)
(* ------------------------------------------------------------------ *)

let e5 () =
  header "E5: HSP in Z_2^k wr Z_2 (Thm 13 general) vs Rötteler–Beth vs classical"
    [ fmt_s "k"; fmt_s "|G|"; fmt_s "algo"; fmt_s "q-quant"; fmt_s "q-class"; fmt_s "ok"; fmt_s "sec" ];
  List.iter
    (fun k ->
      let order = 1 lsl ((2 * k) + 1) in
      let inst = Instances.wreath_random rng ~k in
      let res, sec =
        time_it (fun () ->
            Elem_abelian2.solve_general rng inst.Instances.group
              ~n_gens:(Wreath.base_gens k) inst.Instances.hiding)
      in
      let c, q = Hiding.total_queries inst.Instances.hiding in
      let ok =
        Group.subgroup_equal inst.Instances.group res.Elem_abelian2.generators
          inst.Instances.hidden_gens
      in
      row
        [ fmt_i k; fmt_i order; fmt_s "thm13"; fmt_i q; fmt_i c;
          fmt_s (string_of_bool ok); fmt_f sec ];
      Hiding.reset inst.Instances.hiding;
      let rb, sec =
        time_it (fun () -> Roetteler_beth.solve rng ~k inst.Instances.hiding)
      in
      let c, q = Hiding.total_queries inst.Instances.hiding in
      let ok = Group.subgroup_equal inst.Instances.group rb inst.Instances.hidden_gens in
      row
        [ fmt_i k; fmt_i order; fmt_s "RB"; fmt_i q; fmt_i c;
          fmt_s (string_of_bool ok); fmt_f sec ];
      Hiding.reset inst.Instances.hiding;
      let bf, sec =
        time_it (fun () -> Classical.brute_force inst.Instances.group inst.Instances.hiding)
      in
      let c, _ = Hiding.total_queries inst.Instances.hiding in
      let ok = Group.subgroup_equal inst.Instances.group bf inst.Instances.hidden_gens in
      row
        [ fmt_i k; fmt_i order; fmt_s "classic"; fmt_i 0; fmt_i c;
          fmt_s (string_of_bool ok); fmt_f sec ])
    [ 2; 3; 4; 5 ];
  header "E5b: non-cyclic factor group — Z_2^4 x| V_4 (Thm 13 general, |G/N| = 4)"
    [ fmt_s "|G|"; fmt_s "|G/N|"; fmt_s "q-quant"; fmt_s "q-class"; fmt_s "ok"; fmt_s "sec" ];
  let top =
    [ Perm.of_cycles 4 [ [ 0; 1 ]; [ 2; 3 ] ]; Perm.of_cycles 4 [ [ 0; 2 ]; [ 1; 3 ] ] ]
  in
  let g = Semidirect_perm.group ~n:4 ~top in
  let n_gens = Semidirect_perm.base_gens ~n:4 in
  for _ = 1 to 3 do
    let h_gens = Group.random_subgroup_gens rng g in
    let inst = Instances.make ~name:"Z2^4:V4" g h_gens in
    let res, sec =
      time_it (fun () -> Elem_abelian2.solve_general rng g ~n_gens inst.Instances.hiding)
    in
    let c, q = Hiding.total_queries inst.Instances.hiding in
    let ok =
      Group.subgroup_equal g res.Elem_abelian2.generators inst.Instances.hidden_gens
    in
    row
      [ fmt_i (Group.order g); fmt_i res.Elem_abelian2.quotient_order; fmt_i q; fmt_i c;
        fmt_s (string_of_bool ok); fmt_f sec ]
  done

(* ------------------------------------------------------------------ *)
(* E6: Theorem 13 cyclic-factor case — Z_2^n x| Z_m                   *)
(* ------------------------------------------------------------------ *)

let e6 () =
  header "E6: HSP in Z_2^n x| Z_m (Thm 13, cyclic factor) — |V| = O(log |G/N|)"
    [ fmt_s "n"; fmt_s "m"; fmt_s "|G|"; fmt_s "|V|"; fmt_s "q-quant"; fmt_s "q-class"; fmt_s "ok"; fmt_s "sec" ];
  List.iter
    (fun (n, m) ->
      let inst = Instances.semidirect_random rng ~n ~m in
      let res, sec =
        time_it (fun () ->
            Elem_abelian2.solve_cyclic rng inst.Instances.group
              ~n_gens:(Semidirect.base_gens ~n) inst.Instances.hiding)
      in
      let c, q = Hiding.total_queries inst.Instances.hiding in
      let ok =
        Group.subgroup_equal inst.Instances.group res.Elem_abelian2.generators
          inst.Instances.hidden_gens
      in
      row
        [ fmt_i n; fmt_i m; fmt_i ((1 lsl n) * m); fmt_i res.Elem_abelian2.transversal_size;
          fmt_i q; fmt_i c; fmt_s (string_of_bool ok); fmt_f sec ])
    [ (3, 3); (4, 2); (4, 4); (6, 2); (6, 3); (6, 6); (8, 2); (8, 4); (10, 2) ];
  (* the paper's own Section 6 matrix family *)
  header "E6b: Section 6 matrix groups over GF(2)"
    [ fmt_s "k"; fmt_s "|G|"; fmt_s "q-quant"; fmt_s "ok"; fmt_s "sec" ];
  List.iter
    (fun (a, vs) ->
      let k = Array.length a in
      let g = Matrix_group.section6_group ~p:2 ~a vs in
      let n_gens = Group.normal_closure g (Matrix_group.section6_normal_gens ~p:2 ~k vs) in
      let hidden = [ Matrix_group.section6_type_b ~p:2 ~k (Array.make k 1) ] in
      let inst = Instances.make ~name:"sec6" g hidden in
      let res, sec =
        time_it (fun () -> Elem_abelian2.solve_cyclic rng g ~n_gens inst.Instances.hiding)
      in
      let _, q = Hiding.total_queries inst.Instances.hiding in
      let ok =
        Group.subgroup_equal g res.Elem_abelian2.generators inst.Instances.hidden_gens
      in
      row
        [ fmt_i k; fmt_i (Group.order g); fmt_i q; fmt_s (string_of_bool ok); fmt_f sec ])
    [
      ([| [| 0; 1 |]; [| 1; 1 |] |], [ [| 1; 0 |]; [| 0; 1 |] ]);
      ( [| [| 0; 1; 0 |]; [| 0; 0; 1 |]; [| 1; 0; 0 |] |],
        [ [| 1; 0; 0 |]; [| 0; 1; 0 |]; [| 0; 0; 1 |] ] );
    ]

(* ------------------------------------------------------------------ *)
(* E7: Ettinger–Høyer contrast on dihedral groups                     *)
(* ------------------------------------------------------------------ *)

let e7 () =
  header
    "E7: Ettinger-Hoyer on D_n — O(log n) queries but Theta(n) classical post-processing"
    [ fmt_s "n"; fmt_s "|G|"; fmt_s "q-quant"; fmt_s "scanned"; fmt_s "classical"; fmt_s "ok"; fmt_s "sec" ];
  List.iter
    (fun n ->
      let d = (n / 3) + 1 in
      let inst = Instances.dihedral_reflection ~n ~d in
      let res, sec = time_it (fun () -> Ettinger_hoyer.solve rng ~n inst.Instances.hiding) in
      let _, q = Hiding.total_queries inst.Instances.hiding in
      let inst2 = Instances.dihedral_reflection ~n ~d in
      ignore (Classical.brute_force inst2.Instances.group inst2.Instances.hiding);
      let c_base, _ = Hiding.total_queries inst2.Instances.hiding in
      match res with
      | Some r ->
          row
            [ fmt_i n; fmt_i (2 * n); fmt_i q; fmt_i r.Ettinger_hoyer.candidates_scanned;
              fmt_i c_base; fmt_s (string_of_bool (r.Ettinger_hoyer.slope = d)); fmt_f sec ]
      | None ->
          row [ fmt_i n; fmt_i (2 * n); fmt_i q; fmt_s "-"; fmt_i c_base; fmt_s "fail"; fmt_f sec ])
    [ 8; 16; 32; 64; 128; 256 ]

(* ------------------------------------------------------------------ *)
(* E8: constructive membership (Theorem 6)                            *)
(* ------------------------------------------------------------------ *)

let e8 () =
  header "E8: constructive membership in Abelian subgroups (Thm 6)"
    [ fmt_s "ambient"; fmt_s "exponent"; fmt_s "member"; fmt_s "q-quant"; fmt_s "sec" ];
  let run name g hs target bound =
    let queries = Quantum.Query.create () in
    let res, sec =
      time_it (fun () -> Membership.express rng g ~hs target ~order_bound:bound ~queries)
    in
    row
      [ fmt_s name; fmt_i bound;
        fmt_s (match res with Some _ -> "yes" | None -> "no");
        fmt_i (Quantum.Query.count queries); fmt_f sec ]
  in
  let z = Cyclic.product [| 12; 18 |] in
  run "Z12xZ18" z [ [| 2; 3 |]; [| 0; 6 |] ] [| 4; 0 |] 36;
  run "Z12xZ18" z [ [| 2; 3 |]; [| 0; 6 |] ] [| 1; 0 |] 36;
  let z2 = Cyclic.product [| 16; 9 |] in
  run "Z16xZ9" z2 [ [| 2; 0 |]; [| 0; 3 |] ] [| 6; 6 |] 144;
  let s6 = Perm.symmetric 6 in
  let a = Perm.of_cycles 6 [ [ 0; 1; 2 ] ] and b = Perm.of_cycles 6 [ [ 3; 4 ] ] in
  run "S_6" s6 [ a; b ] (Perm.compose a b) 6;
  (* b commutes with a but lies outside <a>: a negative instance *)
  run "S_6" s6 [ a ] b 6

(* ------------------------------------------------------------------ *)
(* E9: exhaustive correctness sweeps over full subgroup lattices      *)
(* ------------------------------------------------------------------ *)

let e9 () =
  header
    "E9: exhaustive sweeps — every subgroup of each group solved by the applicable theorem"
    [ fmt_s "group"; fmt_s "|G|"; fmt_s "thm"; fmt_s "#subs"; fmt_s "solved"; fmt_s "sec" ];
  let sweep_thm11 : 'a. string -> 'a Group.t -> unit =
   fun name g ->
    let r = Random.State.make [| Hashtbl.hash name |] in
    let subs = Subgroup_lattice.all_subgroups g in
    let solved = ref 0 in
    let _, sec =
      time_it (fun () ->
          List.iter
            (fun h_elems ->
              let inst = Instances.make ~name g h_elems in
              let gens = Small_commutator.solve_gens r g inst.Instances.hiding in
              if Group.subgroup_equal g gens inst.Instances.hidden_gens then incr solved)
            subs)
    in
    row
      [ fmt_s name; fmt_i (Group.order g); fmt_s "11"; fmt_i (List.length subs);
        fmt_i !solved; fmt_f sec ]
  in
  sweep_thm11 "D_4" (Dihedral.group 4);
  sweep_thm11 "D_6" (Dihedral.group 6);
  sweep_thm11 "Q_8" (Dicyclic.group 2);
  sweep_thm11 "Q_12" (Dicyclic.group 3);
  sweep_thm11 "H_3" (Extraspecial.group ~p:3 ~m:1);
  sweep_thm11 "F_21" (Metacyclic.frobenius ~p:7 ~q:3);
  (* wreath k = 2 through Theorem 13 *)
  let r = Random.State.make [| 777 |] in
  let g = Wreath.group 2 in
  let subs = Subgroup_lattice.all_subgroups g in
  let solved = ref 0 in
  let _, sec =
    time_it (fun () ->
        List.iter
          (fun h_elems ->
            let inst = Instances.make ~name:"w2" g h_elems in
            let res =
              Elem_abelian2.solve_general r g ~n_gens:(Wreath.base_gens 2)
                inst.Instances.hiding
            in
            if Group.subgroup_equal g res.Elem_abelian2.generators inst.Instances.hidden_gens
            then incr solved)
          subs)
  in
  row
    [ fmt_s "w(k=2)"; fmt_i 32; fmt_s "13"; fmt_i (List.length subs); fmt_i !solved;
      fmt_f sec ];
  (* normal subgroups of S_4 through Theorem 8 *)
  let r = Random.State.make [| 888 |] in
  let s4 = Perm.symmetric 4 in
  let normals = Subgroup_lattice.normal_subgroups s4 in
  let solved = ref 0 in
  let _, sec =
    time_it (fun () ->
        List.iter
          (fun n_elems ->
            let inst = Instances.make ~name:"S4" s4 n_elems in
            let res = Normal_hsp.solve r s4 inst.Instances.hiding in
            if Group.subgroup_equal s4 res.Normal_hsp.generators inst.Instances.hidden_gens
            then incr solved)
          normals)
  in
  row
    [ fmt_s "S_4 (nrm)"; fmt_i 24; fmt_s "8"; fmt_i (List.length normals); fmt_i !solved;
      fmt_f sec ]

(* ------------------------------------------------------------------ *)
(* E10: dense vs sparse state-vector backends                         *)
(* ------------------------------------------------------------------ *)

let e10 () =
  header
    "E10: dense vs sparse backend — planted Abelian HSP on Z_d1 x Z_d2, H = prod m_i Z_di"
    [ fmt_s "dims"; fmt_s "|G|"; fmt_s "backend"; fmt_s "jobs"; fmt_s "q-quant";
      fmt_s "gates"; fmt_s "dft-fib"; fmt_s "peak-sup"; fmt_s "peak-dns"; fmt_s "ok";
      fmt_s "claim"; fmt_s "sec" ];
  let solve_planted ~dims ~moduli ~backend =
    let r = Array.length dims in
    let coset x0 =
      let rec go i acc =
        if i < 0 then acc
        else
          let reps = dims.(i) / moduli.(i) in
          let choices =
            List.init reps (fun k -> (x0.(i) + (k * moduli.(i))) mod dims.(i))
          in
          go (i - 1)
            (List.concat_map (fun suffix -> List.map (fun c -> c :: suffix) choices) acc)
      in
      List.map Array.of_list (go (r - 1) [ [] ])
    in
    let queries = Quantum.Query.create () in
    let draw = Quantum.Coset_state.sampler_with_support ~backend ~dims ~coset ~queries () in
    let in_h x = Array.for_all2 (fun xi m -> xi mod m = 0) x moduli in
    let f x = Quantum.Backend.encode moduli (Array.map2 (fun xi m -> xi mod m) x moduli) in
    Quantum.Metrics.reset ();
    let (gens, _), sec =
      time_it (fun () ->
          Abelian_hsp.solve_dims rng ~draw ~dims ~f ~quantum:queries ~verify:in_h ())
    in
    let ok = gens <> [] && List.for_all in_h gens in
    (ok, Quantum.Query.count queries, sec, Quantum.Metrics.snapshot ())
  in
  let total dims = Array.fold_left ( * ) 1 dims in
  let show dims = String.concat "x" (List.map string_of_int (Array.to_list dims)) in
  List.iter
    (fun (dims, moduli) ->
      List.iter
        (fun backend ->
          if backend = Quantum.Backend.Dense && total dims > Quantum.State.max_total_dim then
            row
              [ fmt_s (show dims); fmt_i (total dims); fmt_s "dense";
                fmt_i (Quantum.Parallel.jobs ()); fmt_s "-"; fmt_s "-"; fmt_s "-"; fmt_s "-";
                fmt_s "-"; fmt_s "-"; fmt_s "-"; fmt_s "(>cap)" ]
          else begin
            let ok, q, sec, m = solve_planted ~dims ~moduli ~backend in
            let params = Analysis.Cost_check.params ~group_order:(total dims) () in
            row
              [ fmt_s (show dims); fmt_i (total dims);
                fmt_s (Quantum.Backend.choice_to_string backend);
                fmt_i (Quantum.Parallel.jobs ()); fmt_i q;
                fmt_i (m.Quantum.Metrics.gate_apps + m.Quantum.Metrics.dft_apps);
                fmt_i m.Quantum.Metrics.dft_fibres; fmt_i m.Quantum.Metrics.peak_support;
                fmt_i m.Quantum.Metrics.peak_dense_alloc; fmt_s (string_of_bool ok);
                fmt_s (claim_cell "3" ~params ~queries:q m); fmt_f sec ]
          end)
        [ Quantum.Backend.Dense; Quantum.Backend.Sparse ])
    [
      ([| 64; 64 |], [| 8; 8 |]);
      ([| 512; 512 |], [| 16; 32 |]);
      ([| 8192; 8192 |], [| 64; 128 |]);
    ]

(* ------------------------------------------------------------------ *)
(* E11: multicore dense backend — domain-pool scaling + determinism   *)
(* ------------------------------------------------------------------ *)

(* Each workload runs identically at jobs = 1, 2 and 4: a fresh RNG
   with the same seed, a ledger reset, and a digest over every sampled
   outcome.  The ok column asserts the determinism contract — digest
   AND ledger equal to the jobs=1 baseline — and a violation fails the
   run exactly like a cost-claim violation.  The speedup column
   reflects the machine's available cores; on a single-core host the
   parallel rows cost pool overhead and speedup hovers at or below 1. *)
let e11 () =
  header
    "E11: dense backend domain-pool scaling — bit-identical results required at every job count"
    [ fmt_s "workload"; fmt_s "|G|"; fmt_s "jobs"; fmt_s "digest"; fmt_s "ok";
      fmt_s "speedup"; fmt_s "sec" ];
  let counters (m : Quantum.Metrics.snapshot) =
    [ m.Quantum.Metrics.gate_apps; m.Quantum.Metrics.gate_fibres; m.Quantum.Metrics.dft_apps;
      m.Quantum.Metrics.dft_fibres; m.Quantum.Metrics.basis_maps; m.Quantum.Metrics.oracle_ops;
      m.Quantum.Metrics.measurements; m.Quantum.Metrics.states_created;
      m.Quantum.Metrics.peak_dense_alloc ]
  in
  let run_workload name total f =
    let results =
      List.map
        (fun jobs ->
          Quantum.Parallel.set_jobs jobs;
          Quantum.Metrics.reset ();
          let digest, sec = time_it (fun () -> f (Random.State.make [| 0xe11 |])) in
          (jobs, digest, counters (Quantum.Metrics.snapshot ()), sec))
        [ 1; 2; 4 ]
    in
    Quantum.Parallel.set_jobs 1;
    match results with
    | [] -> ()
    | (_, base_digest, base_counters, base_sec) :: _ ->
        List.iter
          (fun (jobs, digest, cs, sec) ->
            let ok =
              String.equal digest base_digest && List.for_all2 Int.equal cs base_counters
            in
            if not ok then begin
              incr claim_violations;
              Printf.printf "claim violation: E11 %s at jobs=%d diverges from the jobs=1 run
"
                name jobs
            end;
            row
              [ fmt_s name; fmt_i total; fmt_i jobs;
                fmt_s (String.sub (Digest.to_hex digest) 0 8); fmt_s (string_of_bool ok);
                fmt_f (base_sec /. Float.max 1e-9 sec); fmt_f sec ])
          results
  in
  (* (a) Coset-state Fourier sampling on two large cyclic wires: the
     QFT fast path (FFT over long fibres) plus full-register
     measurement on growing dense registers (2^18, 2^20, 2^22). *)
  let show dims = String.concat "x" (List.map string_of_int (Array.to_list dims)) in
  List.iter
    (fun (dims, moduli, rounds) ->
      let r = Array.length dims in
      let coset x0 =
        let rec go i acc =
          if i < 0 then acc
          else
            let reps = dims.(i) / moduli.(i) in
            let choices =
              List.init reps (fun k -> (x0.(i) + (k * moduli.(i))) mod dims.(i))
            in
            go (i - 1)
              (List.concat_map (fun suffix -> List.map (fun c -> c :: suffix) choices) acc)
        in
        List.map Array.of_list (go (r - 1) [ [] ])
      in
      run_workload (show dims)
        (Array.fold_left ( * ) 1 dims)
        (fun rng ->
          let queries = Quantum.Query.create () in
          let draw =
            Quantum.Coset_state.sampler_with_support ~backend:Quantum.Backend.Dense ~dims
              ~coset ~queries ()
          in
          let buf = Buffer.create 256 in
          for _ = 1 to rounds do
            Array.iter
              (fun v ->
                Buffer.add_string buf (string_of_int v);
                Buffer.add_char buf ',')
              (draw rng)
          done;
          Digest.string (Buffer.contents buf)))
    [
      ([| 512; 512 |], [| 16; 32 |], 6);
      ([| 1024; 1024 |], [| 32; 32 |], 4);
      ([| 2048; 2048 |], [| 64; 64 |], 2);
    ];
  (* (b) Many small wires (4^10 = 2^20): per-wire gates drive the
     gather/transform/scatter kernel over long rest-index loops, plus
     an oracle write and a basis shift — the kernels workload (a)'s
     FFT path does not touch. *)
  let dims = Array.make 10 4 in
  run_workload "4^10-wires"
    (Array.fold_left ( * ) 1 dims)
    (fun rng ->
      let st = ref (Quantum.State.uniform ~backend:Quantum.Backend.Dense dims) in
      let n = Array.length dims in
      for w = 0 to n - 1 do
        st := Quantum.State.apply_wire !st ~wire:w (Linalg.Cmat.dft dims.(w))
      done;
      st :=
        Quantum.State.apply_oracle_add !st ~in_wires:[ 0; 1; 2 ] ~out_wire:(n - 1)
          ~f:(fun x -> Array.fold_left ( + ) 0 x mod dims.(n - 1));
      st :=
        Quantum.State.apply_basis_map !st (fun x ->
            Array.mapi (fun i xi -> (xi + i) mod dims.(i)) x);
      let buf = Buffer.create 256 in
      for _ = 1 to 3 do
        let outcome, post = Quantum.State.measure rng !st ~wires:[ 0; 3; 7 ] in
        st := post;
        Array.iter
          (fun v ->
            Buffer.add_string buf (string_of_int v);
            Buffer.add_char buf ',')
          outcome
      done;
      Digest.string (Buffer.contents buf))

(* ------------------------------------------------------------------ *)
(* E12: sparse coset sampling — shared O(|G|) prep, O(|coset|) rounds *)
(* ------------------------------------------------------------------ *)

(* The sorted-segment sparse backend on a 2^20..2^26 instance ladder at
   jobs = 1, 2 and 4, against the retained hashtable backend
   ([Quantum.Backend_htbl]) re-running the pre-segment recipe: one
   O(|G|) support scan per sample.  The prep column is the segment
   sampler's one-time oracle bucketing pass (first draw; sampler_preps
   stays at 1 however many rounds follow); sec is the remaining rounds,
   the per-sample O(|coset|) regime that the jobs column can scale.
   As in E11, ok asserts the determinism contract — digest AND ledger
   equal to the jobs=1 baseline — and any divergence fails the run.
   The htbl row's speedup cell is htbl seconds over the segment
   backend's jobs=1 total (prep included): the single-thread gain of
   bucketing once instead of scanning every round. *)
let e12 () =
  header
    "E12: sparse coset sampling ladder — O(|G|) prep shared across rounds, bit-identical at every job count"
    [ fmt_s "dims"; fmt_s "|G|"; fmt_s "backend"; fmt_s "jobs"; fmt_s "support";
      fmt_s "compact"; fmt_s "visits"; fmt_s "digest"; fmt_s "ok"; fmt_s "prep";
      fmt_s "speedup"; fmt_s "sec" ];
  let counters (m : Quantum.Metrics.snapshot) =
    [ m.Quantum.Metrics.gate_apps; m.Quantum.Metrics.gate_fibres; m.Quantum.Metrics.dft_apps;
      m.Quantum.Metrics.dft_fibres; m.Quantum.Metrics.basis_maps; m.Quantum.Metrics.oracle_ops;
      m.Quantum.Metrics.measurements; m.Quantum.Metrics.states_created;
      m.Quantum.Metrics.peak_support; m.Quantum.Metrics.pruned_amps;
      m.Quantum.Metrics.compactions; m.Quantum.Metrics.sampler_preps;
      m.Quantum.Metrics.coset_visits ]
  in
  let show dims = String.concat "x" (List.map string_of_int (Array.to_list dims)) in
  let add_outcome buf o =
    Array.iter
      (fun v ->
        Buffer.add_string buf (string_of_int v);
        Buffer.add_char buf ',')
      o
  in
  List.iter
    (fun (dims, moduli, rounds) ->
      let total = Array.fold_left ( * ) 1 dims in
      let f x =
        Quantum.Backend.encode moduli (Array.map2 (fun xi m -> xi mod m) x moduli)
      in
      let results =
        List.map
          (fun jobs ->
            Quantum.Parallel.set_jobs jobs;
            Quantum.Metrics.reset ();
            let rng = Random.State.make [| 0xe12 |] in
            let queries = Quantum.Query.create () in
            let draw =
              Quantum.Coset_state.sampler ~backend:Quantum.Backend.Sparse ~dims ~f
                ~queries ()
            in
            let buf = Buffer.create 256 in
            (* the first draw pays the shared bucketing pass *)
            let first, prep_sec = time_it (fun () -> draw rng) in
            add_outcome buf first;
            let (), sec =
              time_it (fun () ->
                  for _ = 1 to rounds do
                    add_outcome buf (draw rng)
                  done)
            in
            let digest = Digest.string (Buffer.contents buf) in
            let m = Quantum.Metrics.snapshot () in
            (jobs, digest, counters m, m, prep_sec, sec))
          [ 1; 2; 4 ]
      in
      Quantum.Parallel.set_jobs 1;
      match results with
      | [] -> ()
      | (_, base_digest, base_counters, _, base_prep, base_sec) :: _ ->
          List.iter
            (fun (jobs, digest, cs, m, prep_sec, sec) ->
              let ok =
                String.equal digest base_digest && List.for_all2 Int.equal cs base_counters
              in
              if not ok then begin
                incr claim_violations;
                Printf.printf "claim violation: E12 %s at jobs=%d diverges from the jobs=1 run\n"
                  (show dims) jobs
              end;
              row
                [ fmt_s (show dims); fmt_i total; fmt_s "segment"; fmt_i jobs;
                  fmt_i m.Quantum.Metrics.peak_support; fmt_i m.Quantum.Metrics.compactions;
                  fmt_i m.Quantum.Metrics.coset_visits;
                  fmt_s (String.sub (Digest.to_hex digest) 0 8); fmt_s (string_of_bool ok);
                  fmt_f prep_sec; fmt_f (base_sec /. Float.max 1e-9 sec); fmt_f sec ])
            results;
          (* hashtable baseline on the 2^22 rung: the pre-segment
             sampler's per-round O(|G|) support scan, serial and boxed *)
          if total = 1 lsl 22 then begin
            let wires = List.init (Array.length dims) (fun i -> i) in
            let peak = ref 0 in
            let htbl_round rng =
              let x0 = Random.State.int rng total in
              let t0 = f (Quantum.Backend.decode dims x0) in
              let support = ref [] in
              for idx = total - 1 downto 0 do
                let x = Quantum.Backend.decode dims idx in
                if Int.equal (f x) t0 then support := x :: !support
              done;
              let count = List.length !support in
              if count > !peak then peak := count;
              let amp = Linalg.Cx.re (1.0 /. sqrt (float_of_int count)) in
              let st =
                ref
                  (Quantum.Backend_htbl.of_support dims
                     (List.map (fun x -> (x, amp)) !support))
              in
              List.iter
                (fun w -> st := Quantum.Backend_htbl.apply_dft !st ~wire:w ~inverse:false)
                wires;
              fst (Quantum.Backend_htbl.measure rng !st ~wires)
            in
            let rng = Random.State.make [| 0xe12 |] in
            let buf = Buffer.create 256 in
            let (), sec =
              time_it (fun () ->
                  for _ = 0 to rounds do
                    add_outcome buf (htbl_round rng)
                  done)
            in
            let digest = Digest.string (Buffer.contents buf) in
            row
              [ fmt_s (show dims); fmt_i total; fmt_s "htbl"; fmt_i 1; fmt_i !peak;
                fmt_s "-"; fmt_s "-"; fmt_s (String.sub (Digest.to_hex digest) 0 8);
                fmt_s "-"; fmt_s "-";
                fmt_f (sec /. Float.max 1e-9 (base_prep +. base_sec)); fmt_f sec ]
          end)
    [
      ([| 1024; 1024 |], [| 16; 16 |], 6);
      ([| 2048; 2048 |], [| 16; 16 |], 4);
      ([| 4096; 4096 |], [| 32; 32 |], 3);
      ([| 8192; 8192 |], [| 64; 64 |], 2);
    ]

(* ------------------------------------------------------------------ *)
(* E13: symbolic coset-state backend (cryptographic group sizes).     *)
(*   a. scaling ladder Z_2^k, k = 20..120 — wall clock per sample and *)
(*      the symbolic ledger counters; every outcome is checked to     *)
(*      annihilate the hidden subgroup.                               *)
(*   b. differential gate — symbolic vs dense Fourier-sample          *)
(*      frequencies on small groups, two-sample chi-squared; any      *)
(*      divergence is a claim violation (nonzero exit).               *)
(*   c. one >= 2^100 instance per Theorem 3/6/8/11/13, solved through *)
(*      the symbolic sampler and verified exactly by canonical-HNF    *)
(*      subgroup equality.                                            *)
(* ------------------------------------------------------------------ *)

let e13 () =
  let module BS = Quantum.Backend_symbolic in
  let show dims = String.concat "x" (List.map string_of_int (Array.to_list dims)) in
  (* H = span{e_{2i} + e_{2i+1}} over Z_d^r: order d^(r/2), every coset
     proper, the same planted family the symbolic tests use. *)
  let pair_gens ~r =
    List.init (r / 2) (fun i ->
        Array.init r (fun j -> if j = (2 * i) || j = (2 * i) + 1 then 1 else 0))
  in
  let recover ~dims ~subgroup rounds =
    let queries = Quantum.Query.create () in
    let draw =
      Quantum.Coset_state.sampler_with_subgroup ~backend:Quantum.Backend.Symbolic ~dims
        ~subgroup ~queries ()
    in
    let ys = List.init rounds (fun _ -> draw rng) in
    (ys, Quantum.Coset_state.annihilator_subgroup ~dims ys, Quantum.Query.count queries)
  in
  header "E13a: symbolic backend scaling — Fourier sampling |x0 + H> in Z_2^k, |H| = 2^(k/2)"
    [ fmt_s "|G|"; fmt_s "log2|H|"; fmt_s "samples"; fmt_s "us/smp"; fmt_s "rewrite";
      fmt_s "draws"; fmt_s "solves"; fmt_s "demote"; fmt_s "sec" ];
  List.iter
    (fun k ->
      let dims = Array.make k 2 in
      let gens = pair_gens ~r:k in
      Quantum.Metrics.reset ();
      let queries = Quantum.Query.create () in
      let draw =
        Quantum.Coset_state.sampler_with_subgroup ~backend:Quantum.Backend.Symbolic ~dims
          ~subgroup:gens ~queries ()
      in
      let n = 100 in
      let samples, sec = time_it (fun () -> List.init n (fun _ -> draw rng)) in
      let m = Quantum.Metrics.snapshot () in
      let annihilates =
        List.for_all
          (fun y -> List.for_all (Quantum.Qft.character_is_trivial_on ~dims y) gens)
          samples
      in
      if not annihilates then begin
        incr claim_violations;
        Printf.printf "claim violation: E13a Z_2^%d symbolic sample outside the H-annihilator\n" k
      end;
      row
        [ fmt_s (Printf.sprintf "2^%d" k); fmt_i (k / 2); fmt_i n;
          fmt_f (1e6 *. sec /. float_of_int n);
          fmt_i m.Quantum.Metrics.symbolic_rewrites; fmt_i m.Quantum.Metrics.symbolic_samples;
          fmt_i m.Quantum.Metrics.symbolic_solves; fmt_i m.Quantum.Metrics.symbolic_demotions;
          fmt_f sec ])
    [ 20; 40; 60; 80; 100; 120 ];
  header "E13b: differential gate — symbolic vs dense sample frequencies (two-sample chi^2)"
    [ fmt_s "dims"; fmt_s "|G|"; fmt_s "n/side"; fmt_s "cells"; fmt_s "chi2"; fmt_s "thresh";
      fmt_s "ok" ];
  let chi2_gate dims gens n =
    let tally backend =
      let queries = Quantum.Query.create () in
      let draw =
        Quantum.Coset_state.sampler_with_subgroup ~backend ~dims ~subgroup:gens ~queries ()
      in
      let t = Hashtbl.create 64 in
      for _ = 1 to n do
        let y = Array.to_list (draw rng) in
        Hashtbl.replace t y (1 + Option.value ~default:0 (Hashtbl.find_opt t y))
      done;
      t
    in
    let a = tally Quantum.Backend.Symbolic in
    let b = tally Quantum.Backend.Dense in
    let cells = Hashtbl.create 64 in
    Hashtbl.iter (fun k _ -> Hashtbl.replace cells k ()) a;
    Hashtbl.iter (fun k _ -> Hashtbl.replace cells k ()) b;
    let stat = ref 0.0 in
    Hashtbl.iter
      (fun k () ->
        let ca = float_of_int (Option.value ~default:0 (Hashtbl.find_opt a k)) in
        let cb = float_of_int (Option.value ~default:0 (Hashtbl.find_opt b k)) in
        if ca +. cb > 0.0 then stat := !stat +. (((ca -. cb) ** 2.0) /. (ca +. cb)))
      cells;
    let ncells = Hashtbl.length cells in
    let df = float_of_int (max 1 (ncells - 1)) in
    let thresh = df +. (6.0 *. sqrt (2.0 *. df)) +. 10.0 in
    let ok = !stat < thresh in
    if not ok then begin
      incr claim_violations;
      Printf.printf "claim violation: E13b symbolic/dense divergence chi2=%.2f > %.2f on %s\n"
        !stat thresh (show dims)
    end;
    row
      [ fmt_s (show dims); fmt_i (Array.fold_left ( * ) 1 dims); fmt_i n; fmt_i ncells;
        fmt_f !stat; fmt_f thresh; fmt_s (string_of_bool ok) ]
  in
  chi2_gate [| 4; 6; 8 |] [ [| 2; 0; 0 |]; [| 0; 3; 4 |] ] 4000;
  chi2_gate [| 2; 2; 2; 2; 2 |] [ [| 1; 1; 0; 0; 0 |]; [| 0; 0; 1; 1; 1 |] ] 4000;
  chi2_gate [| 9; 3; 5 |] [ [| 3; 1; 0 |] ] 4000;
  header "E13c: theorem instances at >= 2^100 through the symbolic sampler"
    [ fmt_s "instance"; fmt_s "thm"; fmt_s "log2|G|"; fmt_s "queries"; fmt_s "ok"; fmt_s "sec" ];
  let emit name thm log2g queries ok sec =
    if not ok then begin
      incr claim_violations;
      Printf.printf "claim violation: E13c %s (Thm %s) failed exact verification\n" name thm
    end;
    row
      [ fmt_s name; fmt_s thm; fmt_f log2g; fmt_i queries; fmt_s (string_of_bool ok);
        fmt_f sec ]
  in
  (* Thm 3: Abelian HSP in Z_4^60 (|G| = 2^120), hidden H of order 2^60
     recovered as the annihilator of its Fourier samples. *)
  (let r = 60 in
   let dims = Array.make r 4 in
   let gens = pair_gens ~r in
   let (_, rec_gens, q), sec = time_it (fun () -> recover ~dims ~subgroup:gens (4 * r)) in
   let ok =
     BS.Subgroup.equal (BS.Subgroup.of_gens ~dims gens) (BS.Subgroup.of_gens ~dims rec_gens)
   in
   emit "Z_4^60" "3" 120.0 q ok sec);
  (* Thm 6: constructive membership in A = Z_8^37 (|A| = 2^111).  The
     quantum register is only the rank-4 coefficient group Z_8^4: the
     relation lattice of (h1, h2, h3, x) is hidden there, its coset
     states are sampled symbolically, and any recovered relation whose
     last coefficient is a unit mod 8 expresses x over h1..h3. *)
  (let n = 37 in
   let l = 8 in
   let dims4 = [| l; l; l; l |] in
   let hs = Array.init 3 (fun _ -> Array.init n (fun _ -> Random.State.int rng l)) in
   let secret = Array.init 3 (fun _ -> Random.State.int rng l) in
   let x =
     Array.init n (fun j ->
         ((secret.(0) * hs.(0).(j)) + (secret.(1) * hs.(1).(j)) + (secret.(2) * hs.(2).(j)))
         mod l)
   in
   let coeff_matrix =
     Array.init n (fun j -> [| hs.(0).(j); hs.(1).(j); hs.(2).(j); x.(j) |])
   in
   let lattice =
     List.map
       (fun v -> Array.map (fun c -> ((c mod l) + l) mod l) v)
       (Numtheory.Zmatrix.kernel_mod ~moduli:(Array.make n l) coeff_matrix)
   in
   let run () =
     let _, rec_gens, q = recover ~dims:dims4 ~subgroup:lattice 32 in
     let basis = BS.Subgroup.basis (BS.Subgroup.of_gens ~dims:dims4 rec_gens) in
     (* the relation (c1,c2,c3,-1) guarantees a basis row with a unit
        last coefficient; solve it for x's coordinates. *)
     let expressed =
       Array.to_list basis
       |> List.find_opt (fun a -> Numtheory.Arith.gcd a.(3) l = 1)
       |> Option.map (fun a ->
              let s = l - Numtheory.Arith.invmod a.(3) l in
              Array.init n (fun j ->
                  ((s * a.(0) * hs.(0).(j)) + (s * a.(1) * hs.(1).(j))
                  + (s * a.(2) * hs.(2).(j)))
                  mod l))
     in
     (expressed = Some x, q)
   in
   let (ok, q), sec = time_it run in
   emit "Z_8^37" "6" 111.0 q ok sec);
  (* Thm 8: hidden normal subgroup as the kernel of a planted
     surjection Z_2^110 ->> Z_2^3 (|G| = 2^110, quotient order 8). *)
  (let n = 110 in
   let dims = Array.make n 2 in
   let phi =
     Array.init 3 (fun i ->
         Array.init n (fun j -> if j < 3 then (if j = i then 1 else 0) else Random.State.int rng 2))
   in
   let kernel =
     List.map
       (fun v -> Array.map (fun c -> ((c mod 2) + 2) mod 2) v)
       (Numtheory.Zmatrix.kernel_mod ~moduli:(Array.make 3 2) phi)
   in
   let (_, rec_gens, q), sec = time_it (fun () -> recover ~dims ~subgroup:kernel 40) in
   let ok =
     BS.Subgroup.equal (BS.Subgroup.of_gens ~dims kernel)
       (BS.Subgroup.of_gens ~dims rec_gens)
   in
   emit "ker(2^110->2^3)" "8" 110.0 q ok sec);
  (* Thm 11: G of order 2^101 with |G'| = 2 — elements (v, t) in
     Z_2^100 x Z_2 with a central commutator bit.  The hidden subgroup
     contains G', so H/G' is hidden in G/G' ~ Z_2^100: solve that
     Abelian instance symbolically, then one classical query confirms
     the central lift. *)
  (let r = 100 in
   let dims = Array.make r 2 in
   let hbar = pair_gens ~r in
   let run () =
     let _, rec_gens, q = recover ~dims ~subgroup:hbar (4 * r) in
     let quotient_ok =
       BS.Subgroup.equal (BS.Subgroup.of_gens ~dims hbar)
         (BS.Subgroup.of_gens ~dims rec_gens)
     in
     (* classical lift query: G' <= H, so the central element's hiding
        value collides with the identity's. *)
     let hiding (_v, t) = if t = 0 || t = 1 then 0 else 1 in
     let lift_ok = hiding (Array.make r 0, 1) = hiding (Array.make r 0, 0) in
     (quotient_ok && lift_ok, q + 2)
   in
   let (ok, q), sec = time_it run in
   emit "2^101,|G'|=2" "11" 101.0 q ok sec);
  (* Thm 13: G = Z_2^100 x| Z_2 probed through the register Z_2^101.
     The planted elementary-Abelian H is generated by 49 base pairs
     (fixed by the top involution) plus one reflection (w, 1); on the
     probe register it is an Abelian hidden subgroup of order 2^50. *)
  (let n = 100 in
   let dims = Array.make (n + 1) 2 in
   let base =
     List.init 49 (fun i ->
         Array.init (n + 1) (fun j -> if j = (2 * i) || j = (2 * i) + 1 then 1 else 0))
   in
   let w = Array.init (n + 1) (fun j -> if j >= 98 then 1 else 0) in
   let gens = w :: base in
   let (_, rec_gens, q), sec = time_it (fun () -> recover ~dims ~subgroup:gens 420) in
   let ok =
     BS.Subgroup.equal (BS.Subgroup.of_gens ~dims gens) (BS.Subgroup.of_gens ~dims rec_gens)
   in
   emit "Z_2^100x|Z_2" "13" 101.0 q ok sec)

(* ------------------------------------------------------------------ *)
(* E14: hsp_served traffic replay — cached, batched service layer     *)
(* ------------------------------------------------------------------ *)

(* Engine-level replay (no socket): a seeded mixed workload over 18
   distinct planted oracles — 12 amplitude-routed, 6 symbolic — is
   submitted from 8 client threads, twice, against one engine.  Pass 1
   populates the artifact cache (each amplitude oracle pays its one
   O(|A|) CSR prep); pass 2 replays identical traffic warm.  The
   repeated-oracle slice then measures the cache's point: the same
   requests through a 1-entry cache thrashed between two oracles (so
   every request rebuilds its buckets) versus through a warm cache.
   Gates, counted as claim violations: total sampler_preps after both
   mixed passes must equal the number of distinct amplitude oracles
   (the warm pass preps nothing), and warm throughput must be at least
   5x the thrashed cold path. *)

let e14 () =
  let module Sv = Hsp_service.Service in
  let module Pr = Hsp_service.Protocol in
  let module Jv = Hsp_service.Jsonv in
  header "E14: hsp_served traffic replay — throughput, latency, cache hit rate"
    [ fmt_s "phase"; fmt_s "reqs"; fmt_s "thr"; fmt_s "req/s"; fmt_s "p50ms";
      fmt_s "p99ms"; fmt_s "hit%"; fmt_s "preps"; fmt_s "ok" ];
  (* 12 distinct amplitude instances and 6 symbolic ones (Z_2^r at
     r = 100..105, balanced split) — distinct dims give distinct cache
     fingerprints.  The sparse slice carries the cache's payoff: its
     per-draw cost is O(|coset| + |dual|), so the one O(|A|) prep pass
     dominates a cold request.  Dense draws pay a full-register QFT per
     draw regardless of prep, so those instances stay small. *)
  let amp i =
    if i < 4 then
      { Pr.dims = [| 64; 16 * (4 + i) |]; moduli = [| 16; 16 |]; backend = None }
    else
      { Pr.dims = [| 1 lsl (10 + (i mod 3)); 16 * (4 + i) |];
        moduli = [| 16; 16 |];
        backend = Some Quantum.Backend.Sparse }
  in
  let sym i =
    let r = 100 + i in
    { Pr.dims = Array.make r 2;
      moduli = Array.init r (fun j -> if j < r / 2 then 2 else 1);
      backend = None }
  in
  let n_amp = 12 in
  let oracles = List.init n_amp amp @ List.init 6 sym in
  let mk inst k = { Pr.id = Jv.Null; req = Pr.Sample { inst; count = 4; seed = Some k } } in
  let wl_rng = Random.State.make [| 20260809; 14 |] in
  let mixed =
    let a =
      Array.of_list
        (List.concat_map (fun inst -> List.init 6 (fun k -> mk inst k)) oracles)
    in
    (* Fisher–Yates with the fixed workload seed: the replay order is
       part of the experiment definition *)
    for i = Array.length a - 1 downto 1 do
      let j = Random.State.int wl_rng (i + 1) in
      let t = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- t
    done;
    a
  in
  let percentile sorted p =
    let n = Array.length sorted in
    sorted.(max 0 (min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1)))
  in
  (* [replay engine nthreads reqs] drives the full client path minus
     the socket: worker threads pull from a shared cursor and block in
     [Service.submit], so concurrent same-oracle requests really do
     land in one executor batch. *)
  let replay engine nthreads reqs =
    let lat = Array.make (Array.length reqs) 0.0 in
    let okc = Atomic.make 0 in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < Array.length reqs then begin
          let t0 = Unix.gettimeofday () in
          let reply = Sv.submit engine reqs.(i) in
          lat.(i) <- (Unix.gettimeofday () -. t0) *. 1000.;
          (match Option.bind (Jv.member "ok" reply) Jv.to_bool_opt with
          | Some true -> Atomic.incr okc
          | _ -> ());
          loop ()
        end
      in
      loop ()
    in
    let t0 = Unix.gettimeofday () in
    let threads = List.init nthreads (fun _ -> Thread.create worker ()) in
    List.iter Thread.join threads;
    let wall = Unix.gettimeofday () -. t0 in
    Array.sort compare lat;
    (wall, lat, Atomic.get okc)
  in
  let preps () = (Quantum.Metrics.snapshot ()).Quantum.Metrics.sampler_preps in
  let emit phase nthreads (wall, lat, okc) ~hitpct ~preps =
    let n = Array.length lat in
    row
      [ fmt_s phase; fmt_i n; fmt_i nthreads; fmt_f (float_of_int n /. wall);
        fmt_f (percentile lat 0.50); fmt_f (percentile lat 0.99); fmt_f hitpct;
        fmt_i preps; fmt_s (string_of_bool (okc = n)) ]
  in
  let hit_pct (before : Hsp_service.Cache.stats) (after : Hsp_service.Cache.stats) =
    let h = after.Hsp_service.Cache.hits - before.Hsp_service.Cache.hits
    and m = after.Hsp_service.Cache.misses - before.Hsp_service.Cache.misses in
    if h + m = 0 then 0.0 else 100.0 *. float_of_int h /. float_of_int (h + m)
  in
  Quantum.Metrics.reset ();
  let engine = Sv.create ~seed:2026 () in
  Sv.start engine;
  let preps0 = preps () in
  let s0 = Sv.cache_stats engine in
  let cold = replay engine 8 mixed in
  let s1 = Sv.cache_stats engine in
  let preps1 = preps () - preps0 in
  emit "mixed-cold" 8 cold ~hitpct:(hit_pct s0 s1) ~preps:preps1;
  let warm = replay engine 8 mixed in
  let s2 = Sv.cache_stats engine in
  let preps2 = preps () - preps0 in
  emit "mixed-warm" 8 warm ~hitpct:(hit_pct s1 s2) ~preps:(preps2 - preps1);
  Sv.stop engine;
  if preps2 <> n_amp then begin
    incr claim_violations;
    Printf.printf
      "claim violation: E14 sampler_preps = %d after warm replay, want %d (one per distinct amplitude oracle)\n"
      preps2 n_amp
  end;
  (* Repeated-oracle slice.  Same engine machinery both sides; one
     thread, so no batch ever hides a prep.  Thrashing a 1-entry cache
     between two same-shaped oracles is the uncached path: every
     request rebuilds its O(|A|) buckets. *)
  let rep =
    { Pr.dims = [| 8192; 128 |]; moduli = [| 64; 16 |];
      backend = Some Quantum.Backend.Sparse }
  in
  let alt =
    { Pr.dims = [| 128; 8192 |]; moduli = [| 16; 64 |];
      backend = Some Quantum.Backend.Sparse }
  in
  let n_rep = 24 in
  let rep_reqs =
    Array.init n_rep (fun k ->
        { Pr.id = Jv.Null; req = Pr.Sample { inst = rep; count = 1; seed = Some k } })
  in
  let thrash_reqs =
    Array.init n_rep (fun k ->
        { Pr.id = Jv.Null;
          req = Pr.Sample { inst = (if k mod 2 = 0 then rep else alt); count = 1; seed = Some k } })
  in
  let cold_engine = Sv.create ~cache_entries:1 ~seed:2026 () in
  Sv.start cold_engine;
  let c0 = Sv.cache_stats cold_engine in
  let pc0 = preps () in
  let ((cold_wall, _, _) as coldr) = replay cold_engine 1 thrash_reqs in
  let c1 = Sv.cache_stats cold_engine in
  emit "rep-cold" 1 coldr ~hitpct:(hit_pct c0 c1) ~preps:(preps () - pc0);
  Sv.stop cold_engine;
  let warm_engine = Sv.create ~seed:2026 () in
  Sv.start warm_engine;
  (* prime the cache with one untimed request, then replay *)
  ignore
    (Sv.submit warm_engine
       { Pr.id = Jv.Null; req = Pr.Sample { inst = rep; count = 1; seed = Some 0 } });
  let w0 = Sv.cache_stats warm_engine in
  let pw0 = preps () in
  let ((warm_wall, _, _) as warmr) = replay warm_engine 1 rep_reqs in
  let w1 = Sv.cache_stats warm_engine in
  emit "rep-warm" 1 warmr ~hitpct:(hit_pct w0 w1) ~preps:(preps () - pw0);
  Sv.stop warm_engine;
  let speedup = cold_wall /. warm_wall in
  row
    [ fmt_s "speedup"; fmt_i n_rep; fmt_i 1; fmt_s (Printf.sprintf "%.1fx" speedup);
      fmt_s "-"; fmt_s "-"; fmt_s "-"; fmt_s "-"; fmt_s (string_of_bool (speedup >= 5.0)) ];
  if speedup < 5.0 then begin
    incr claim_violations;
    Printf.printf
      "claim violation: E14 warm/cold throughput ratio %.2fx < 5x on the repeated-oracle workload\n"
      speedup
  end

(* ------------------------------------------------------------------ *)
(* E15: circuit compiler + fused kernels.  Each workload is a qubit   *)
(* circuit run through [Circuit.run] under every combination of       *)
(* HSP_FUSE (plan vs gate-by-gate), job count and scheduler; digests  *)
(* over the measured outcomes must agree bit-for-bit across ALL rows, *)
(* ledger counters across rows of the same fuse mode, and the fused   *)
(* single-thread run must beat the unfused one >= 5x.  Every compiled *)
(* plan is verified symbolically by Circuit_check.check_plan first.   *)
(* The sec column times circuit execution only; measurement (common   *)
(* to both paths) happens outside the timer but inside the digest.    *)
(* ------------------------------------------------------------------ *)

let e15 () =
  header
    "E15: circuit compiler + fused kernels — fused single-thread >= 5x, digests identical across HSP_FUSE / jobs / sched"
    [ fmt_s "workload"; fmt_s "gates"; fmt_s "fuse"; fmt_s "jobs"; fmt_s "sched";
      fmt_s "digest"; fmt_s "ok"; fmt_s "speedup"; fmt_s "sec" ];
  (* gate_fibres / fused_* describe backend work and legitimately
     differ ACROSS fuse modes; within one mode every row must agree. *)
  let counters (m : Quantum.Metrics.snapshot) =
    [ m.Quantum.Metrics.gate_apps; m.Quantum.Metrics.gate_fibres;
      m.Quantum.Metrics.plans_compiled; m.Quantum.Metrics.fused_passes;
      m.Quantum.Metrics.fused_gates; m.Quantum.Metrics.measurements;
      m.Quantum.Metrics.states_created ]
  in
  let sched_name = function
    | Quantum.Parallel.Fifo -> "fifo"
    | Quantum.Parallel.Shuffle -> "shuf"
  in
  let variants =
    [ (false, 1, Quantum.Parallel.Fifo); (false, 2, Quantum.Parallel.Fifo);
      (false, 4, Quantum.Parallel.Fifo); (false, 4, Quantum.Parallel.Shuffle);
      (true, 1, Quantum.Parallel.Fifo); (true, 2, Quantum.Parallel.Fifo);
      (true, 4, Quantum.Parallel.Fifo); (true, 4, Quantum.Parallel.Shuffle) ]
  in
  let run_workload name c measures =
    let plan = Quantum.Circuit.compile c in
    (match Analysis.Circuit_check.check_plan c plan with
    | Ok () -> ()
    | Error vs ->
        incr claim_violations;
        Printf.printf "claim violation: E15 %s plan fails symbolic verification: %s\n" name
          (String.concat "; "
             (List.map
                (fun v -> Format.asprintf "%a" Analysis.Circuit_check.pp_plan_violation v)
                vs)));
    Printf.printf "%s plan: %d gates -> %d steps, %d bytes\n" name
      (Quantum.Circuit_plan.gate_count plan)
      (Quantum.Circuit_plan.step_count plan)
      (Quantum.Circuit_plan.bytes plan);
    let n = Quantum.Circuit.num_qubits c in
    let x0 = Array.init n (fun i -> i land 1) in
    let run rng =
      let st0 =
        Quantum.State.of_basis ~backend:Quantum.Backend.Dense (Array.make n 2) x0
      in
      let stc, sec = time_it (fun () -> Quantum.Circuit.run c st0) in
      let st = ref stc in
      let buf = Buffer.create 256 in
      List.iter
        (fun wires ->
          let outcome, post = Quantum.State.measure rng !st ~wires in
          st := post;
          Array.iter
            (fun v ->
              Buffer.add_string buf (string_of_int v);
              Buffer.add_char buf ',')
            outcome)
        measures;
      (Digest.string (Buffer.contents buf), sec)
    in
    let results =
      List.map
        (fun (fuse, jobs, sched) ->
          Quantum.Circuit_plan.set_fuse fuse;
          Quantum.Parallel.set_jobs jobs;
          Quantum.Parallel.set_sched sched;
          Quantum.Metrics.reset ();
          let digest, sec = run (Random.State.make [| 0xe15 |]) in
          ((fuse, jobs, sched), digest, counters (Quantum.Metrics.snapshot ()), sec))
        variants
    in
    Quantum.Circuit_plan.set_fuse false;
    Quantum.Parallel.set_jobs 1;
    Quantum.Parallel.set_sched Quantum.Parallel.Fifo;
    let find fuse jobs sched =
      List.find
        (fun ((f, j, s), _, _, _) ->
          Bool.equal f fuse && Int.equal j jobs && s == sched)
        results
    in
    let _, base_digest, _, base_sec = find false 1 Quantum.Parallel.Fifo in
    let _, _, _, fused_sec = find true 1 Quantum.Parallel.Fifo in
    List.iter
      (fun ((fuse, jobs, sched), digest, cs, sec) ->
        let _, _, mode_base, _ = find fuse 1 Quantum.Parallel.Fifo in
        let ok =
          String.equal digest base_digest && List.for_all2 Int.equal cs mode_base
        in
        if not ok then begin
          incr claim_violations;
          Printf.printf
            "claim violation: E15 %s fuse=%b jobs=%d sched=%s diverges from the unfused jobs=1 run\n"
            name fuse jobs (sched_name sched)
        end;
        row
          [ fmt_s name; fmt_i (Quantum.Circuit.gate_count c);
            fmt_s (if fuse then "1" else "0"); fmt_i jobs; fmt_s (sched_name sched);
            fmt_s (String.sub (Digest.to_hex digest) 0 8); fmt_s (string_of_bool ok);
            fmt_f (base_sec /. Float.max 1e-9 sec); fmt_f sec ])
      results;
    let speedup = base_sec /. Float.max 1e-9 fused_sec in
    row
      [ fmt_s name; fmt_i (Quantum.Circuit.gate_count c); fmt_s "1x-vs-0x"; fmt_i 1;
        fmt_s "fifo"; fmt_s "-"; fmt_s (string_of_bool (speedup >= 5.0));
        fmt_f speedup; fmt_f fused_sec ];
    if speedup < 5.0 then begin
      incr claim_violations;
      Printf.printf
        "claim violation: E15 %s fused single-thread speedup %.2fx < 5x over the gate-by-gate path\n"
        name speedup
    end
  in
  (* the E11 kernels workload as a circuit: 4^10 = 2^20 amplitudes,
     one dft4 per quaternary wire, i.e. a dense 2-qubit gate per pair *)
  let dft4_circuit =
    let c = ref (Quantum.Circuit.empty 20) in
    for i = 0 to 9 do
      c := Quantum.Circuit.gate !c (Linalg.Cmat.dft 4) [ 2 * i; (2 * i) + 1 ]
    done;
    !c
  in
  run_workload "4^10-circ" dft4_circuit [ [ 0; 3; 7 ]; [ 1; 2 ]; [ 4; 5; 6 ] ];
  (* the QFT ladder: where Diag / Perm fusion (not just the 2q kernel)
     carries the speedup *)
  run_workload "qft-16" (Quantum.Circuit.qft 16) [ [ 0; 3; 7 ]; [ 1; 2 ]; [ 4; 5; 6 ] ]

(* ------------------------------------------------------------------ *)
(* Smoke: one small instance per theorem — the CI gate.  Fast, runs   *)
(* through Runner so each row carries the ok verdict and the ledger;  *)
(* CI fails the build if any ok cell is false.                        *)
(* ------------------------------------------------------------------ *)

let smoke () =
  header "Smoke: one small instance per theorem (CI gate)"
    [ fmt_s "instance"; fmt_s "algo"; fmt_s "thm"; fmt_s "jobs"; fmt_s "ok";
      fmt_s "queries"; fmt_s "gates"; fmt_s "claim"; fmt_s "sec" ];
  (* The claim gate counts every oracle evaluation — classical plus
     quantum — since the theorems bound total query complexity and our
     Theorem-8/11 routes schedule some of the paper's quantum queries
     as classical evaluations on the quotient. *)
  let emit thm params (r : Runner.report) =
    let queries = r.Runner.classical_queries + r.Runner.quantum_queries in
    row
      [ fmt_s r.Runner.instance; fmt_s r.Runner.algorithm; fmt_s thm;
        fmt_i (Quantum.Parallel.jobs ()); fmt_s (string_of_bool r.Runner.ok); fmt_i queries;
        fmt_i
          (r.Runner.metrics.Quantum.Metrics.gate_apps
          + r.Runner.metrics.Quantum.Metrics.dft_apps);
        fmt_s (claim_cell thm ~params ~queries r.Runner.metrics); fmt_f r.Runner.seconds ]
  in
  let p = Analysis.Cost_check.params in
  emit "3"
    (p ~group_order:16 ())
    (Runner.run ~algorithm:"abelian"
       (Instances.simon ~n:4 ~mask:[| 1; 0; 1; 1 |])
       ~solver:(fun i -> Abelian_hsp.solve rng i.Instances.group i.Instances.hiding));
  emit "8"
    (p ~group_order:24 ~quotient_order:4 ())
    (Runner.run ~algorithm:"normal"
       (Instances.dihedral_rotation ~n:12 ~d:2)
       ~solver:(fun i ->
         (Normal_hsp.solve rng i.Instances.group i.Instances.hiding).Normal_hsp.generators));
  emit "11"
    (p ~group_order:27 ~commutator_order:3 ())
    (Runner.run ~algorithm:"commutator"
       (Instances.heisenberg_random rng ~p:3 ~m:1)
       ~solver:(fun i -> Small_commutator.solve_gens rng i.Instances.group i.Instances.hiding));
  emit "13g"
    (p ~group_order:32 ~quotient_order:2 ())
    (Runner.run ~algorithm:"thm13-general"
       (Instances.wreath_random rng ~k:2)
       ~solver:(fun i ->
         (Elem_abelian2.solve_general rng i.Instances.group ~n_gens:(Wreath.base_gens 2)
            i.Instances.hiding)
           .Elem_abelian2.generators));
  emit "13c"
    (p ~group_order:32 ~quotient_order:2 ~nu:1 ())
    (Runner.run ~algorithm:"thm13-cyclic"
       (Instances.semidirect_random rng ~n:4 ~m:2)
       ~solver:(fun i ->
         (Elem_abelian2.solve_cyclic rng i.Instances.group
            ~n_gens:(Semidirect.base_gens ~n:4) i.Instances.hiding)
           .Elem_abelian2.generators));
  (* Theorems 4 and 6 have no Instances wrapper; their checks are
     closed-form. *)
  Quantum.Metrics.reset ();
  let queries = Quantum.Query.create () in
  let o, sec =
    time_it (fun () ->
        Quantum.Shor.find_order rng
          ~pow:(fun k -> Numtheory.Arith.powmod 2 k 15)
          ~order_bound:15 ~queries)
  in
  let q = Quantum.Query.count queries in
  let m = Quantum.Metrics.snapshot () in
  row
    [ fmt_s "ord(2 mod 15)"; fmt_s "shor"; fmt_s "4"; fmt_i (Quantum.Parallel.jobs ());
      fmt_s (string_of_bool (o = Some 4));
      fmt_i q; fmt_i (m.Quantum.Metrics.gate_apps + m.Quantum.Metrics.dft_apps);
      fmt_s (claim_cell "4" ~params:(p ~group_order:15 ()) ~queries:q m); fmt_f sec ];
  Quantum.Metrics.reset ();
  let z = Cyclic.product [| 12; 18 |] in
  let queries = Quantum.Query.create () in
  let res, sec =
    time_it (fun () ->
        Membership.express rng z ~hs:[ [| 2; 3 |]; [| 0; 6 |] ] [| 4; 0 |] ~order_bound:36
          ~queries)
  in
  let q = Quantum.Query.count queries in
  let m = Quantum.Metrics.snapshot () in
  row
    [ fmt_s "Z12xZ18"; fmt_s "membership"; fmt_s "6"; fmt_i (Quantum.Parallel.jobs ());
      fmt_s (string_of_bool (res <> None));
      fmt_i q; fmt_i (m.Quantum.Metrics.gate_apps + m.Quantum.Metrics.dft_apps);
      fmt_s (claim_cell "6" ~params:(p ~group_order:36 ()) ~queries:q m); fmt_f sec ];
  (* Lint budget: both static passes (value semantics + concurrency
     safety) must be clean over lib — an unsuppressed finding is a
     claim violation like any ok=false row.  The queries column carries
     the finding count.  Skipped when the sources are not around (e.g.
     running the installed binary outside the repo). *)
  if Sys.file_exists "lib" && Sys.is_directory "lib" then begin
    let rec files path =
      if Sys.is_directory path then
        Sys.readdir path |> Array.to_list
        |> List.concat_map (fun e -> files (Filename.concat path e))
      else if Filename.check_suffix path ".ml" then [ path ]
      else []
    in
    let findings, sec =
      time_it (fun () ->
          List.fold_left
            (fun acc f ->
              acc
              + List.length (Analysis.Lint.lint_file f)
              + List.length (Analysis.Race_check.lint_file f))
            0 (files "lib"))
    in
    let ok = findings = 0 in
    if not ok then incr claim_violations;
    row
      [ fmt_s "lib/*.ml"; fmt_s "hsp_lint"; fmt_s "-"; fmt_i (Quantum.Parallel.jobs ());
        fmt_s (string_of_bool ok); fmt_i findings; fmt_s "-";
        fmt_s (if ok then "ok" else "OVER"); fmt_f sec ]
  end

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per experiment            *)
(* ------------------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  let simon_inst = Instances.simon ~n:6 ~mask:[| 1; 0; 1; 0; 1; 0 |] in
  let dihedral_inst = Instances.dihedral_rotation ~n:24 ~d:4 in
  let heis_inst = Instances.heisenberg_center ~p:5 ~m:1 in
  let wreath_inst = Instances.wreath_diagonal ~k:3 in
  let semi_inst = Instances.semidirect_random rng ~n:4 ~m:4 in
  let refl_inst = Instances.dihedral_reflection ~n:32 ~d:7 in
  let z = Cyclic.product [| 12; 18 |] in
  let tests =
    [
      Test.make ~name:"e1_abelian_simon" (Staged.stage (fun () ->
          ignore (Abelian_hsp.solve rng simon_inst.Instances.group simon_inst.Instances.hiding)));
      Test.make ~name:"e2_shor_order" (Staged.stage (fun () ->
          let queries = Quantum.Query.create () in
          ignore
            (Quantum.Shor.find_order rng
               ~pow:(fun k -> Numtheory.Arith.powmod 2 k 77)
               ~order_bound:77 ~queries)));
      Test.make ~name:"e3_normal_dihedral" (Staged.stage (fun () ->
          ignore (Normal_hsp.solve rng dihedral_inst.Instances.group dihedral_inst.Instances.hiding)));
      Test.make ~name:"e4_commutator_heisenberg" (Staged.stage (fun () ->
          ignore (Small_commutator.solve rng heis_inst.Instances.group heis_inst.Instances.hiding)));
      Test.make ~name:"e5_wreath_thm13" (Staged.stage (fun () ->
          ignore
            (Elem_abelian2.solve_general rng wreath_inst.Instances.group
               ~n_gens:(Wreath.base_gens 3) wreath_inst.Instances.hiding)));
      Test.make ~name:"e6_cyclic_thm13" (Staged.stage (fun () ->
          ignore
            (Elem_abelian2.solve_cyclic rng semi_inst.Instances.group
               ~n_gens:(Semidirect.base_gens ~n:4) semi_inst.Instances.hiding)));
      Test.make ~name:"e7_ettinger_hoyer" (Staged.stage (fun () ->
          ignore (Ettinger_hoyer.solve rng ~n:32 refl_inst.Instances.hiding)));
      Test.make ~name:"e8_membership" (Staged.stage (fun () ->
          let queries = Quantum.Query.create () in
          ignore
            (Membership.express rng z ~hs:[ [| 2; 3 |]; [| 0; 6 |] ] [| 4; 0 |]
               ~order_bound:36 ~queries)));
    ]
  in
  let grouped = Test.make_grouped ~name:"hsp" tests in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.8) ~kde:(Some 100) () in
  let raw = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  Printf.printf "\n== Bechamel micro-benchmarks (monotonic clock, ns/run) ==\n";
  let rows =
    Hashtbl.fold (fun name est acc -> (name, est) :: acc) ols []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (name, est) ->
      match Analyze.OLS.estimates est with
      | Some [ e ] -> Printf.printf "  %-32s %14.0f ns/run\n" name e
      | _ -> Printf.printf "  %-32s (no estimate)\n" name)
    rows

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let all = [ ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6); ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11); ("e12", e12); ("e13", e13); ("e14", e14); ("e15", e15) ] in
  Printf.printf "HSP benchmark harness — reproduces EXPERIMENTS.md (seed fixed)\n";
  (match args with
  | [] ->
      List.iter (fun (_, f) -> f ()) all;
      micro ()
  | [ "micro" ] -> micro ()
  | selected ->
      List.iter
        (fun name ->
          match List.assoc_opt name all with
          | Some f -> f ()
          | None when name = "micro" -> micro ()
          | None when name = "smoke" -> smoke ()
          | None -> Printf.printf "unknown experiment %s\n" name)
        selected);
  if !tables <> [] then write_json ();
  if !claim_violations > 0 then begin
    Printf.printf "FAILED: %d cost-claim violation(s) — see Analysis.Cost_check\n"
      !claim_violations;
    exit 1
  end
