(* Command-line interface to the HSP solvers.

     hsp solve-simon --n 8 --mask 10110010
     hsp solve-abelian --dims 8192,8192 --moduli 64,128 --backend sparse
     hsp solve-abelian --dims 2^200 --moduli 2^100,1^100 --backend symbolic
     hsp solve-dihedral --n 24 --d 4
     hsp solve-heisenberg --p 5
     hsp solve-wreath --k 3
     hsp solve-semidirect --n 4 --m 4
     hsp factor 221
     hsp dlog --p 101 --g 2 --h 55
     hsp order --modulus 77 --base 2

   Every command prints the answer, the oracle-query accounting, and a
   correctness check against the planted ground truth.  A global
   [--backend dense|sparse|symbolic|auto] flag selects the state
   simulation backend (default: the HSP_BACKEND environment variable,
   then auto); [--jobs N] sets the dense backend's worker-domain count
   (default: HSP_JOBS, then 1 — results are identical at any value). *)

open Groups
open Hsp
open Cmdliner

let rng_of_seed seed = Random.State.make [| seed |]

let seed_arg =
  let doc = "PRNG seed (all algorithms are Las Vegas; the answer is always verified)." in
  Arg.(value & opt int 2026 & info [ "seed" ] ~doc)

let backend_arg =
  let backend_conv =
    Arg.conv
      ( (fun s ->
          match Quantum.Backend.choice_of_string s with
          | Some c -> Ok c
          | None ->
              Error
                (`Msg
                  (Printf.sprintf "unknown backend %S (expected dense, sparse, symbolic or auto)" s))),
        fun fmt c -> Format.pp_print_string fmt (Quantum.Backend.choice_to_string c) )
  in
  let doc =
    "State simulation backend: $(b,dense) (exact amplitude array, capped at 2^24 amplitudes),      $(b,sparse) (sorted segment of nonzero amplitudes, scales to 2^26 coset sampling and      beyond), $(b,symbolic) (amplitude-free coset-state algebra: exact sampling at      cryptographic group sizes such as Z_2^200, for the commands that accept subgroup      structure) or $(b,auto) (dense when the register fits, sparse beyond; never symbolic).      Defaults to the $(b,HSP_BACKEND) environment variable, then $(b,auto)."
  in
  Arg.(value & opt (some backend_conv) None & info [ "backend" ] ~doc)

let set_backend = function None -> () | Some c -> Quantum.Backend.set_default c

(* Options shared by every subcommand: backend selection, the parallel
   job count, plus the two observability switches. *)
type common = {
  backend : Quantum.Backend.choice option;
  jobs : int option;
  fuse : bool option;
  trace : bool;
  metrics : bool;
}

let jobs_arg =
  let doc =
    "Worker domains for the dense backend's parallel kernels (1..64).  Results are      bit-for-bit identical at every job count; the default is the $(b,HSP_JOBS)      environment variable, then 1 (serial)."
  in
  let jobs_conv =
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 1 && n <= Quantum.Parallel.max_jobs -> Ok n
      | _ ->
          Error
            (`Msg
              (Printf.sprintf "expected a job count in 1..%d, got %s"
                 Quantum.Parallel.max_jobs s))
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(value & opt (some jobs_conv) None & info [ "jobs"; "j" ] ~doc ~docv:"N")

let fuse_arg =
  let doc =
    "Circuit execution mode: $(b,1) compiles circuits into fused plans run through the      native kernels (Quantum.Circuit_plan), $(b,0) keeps the gate-by-gate path.  Results      are identical either way; the default is the $(b,HSP_FUSE) environment variable,      then 0."
  in
  let fuse_conv =
    let parse s =
      try Ok (Quantum.Circuit_plan.parse_fuse s)
      with Invalid_argument msg -> Error (`Msg msg)
    in
    Arg.conv (parse, Format.pp_print_bool)
  in
  Arg.(value & opt (some fuse_conv) None & info [ "fuse" ] ~doc ~docv:"0|1")

let trace_arg =
  let doc =
    "Emit structured cost-ledger trace events (phase completions, per-round sampler      events) through the $(b,hsp.trace) log source while the algorithm runs."
  in
  Arg.(value & flag & info [ "trace" ] ~doc)

let metrics_arg =
  let doc =
    "Print the simulator cost ledger after the run: gate and DFT applications, fibre      counts, basis-map/oracle ops, peak sparse support, pruned amplitudes, peak dense      allocation, and per-phase wall-clock seconds."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let common_arg =
  let make backend jobs fuse trace metrics = { backend; jobs; fuse; trace; metrics } in
  Term.(const make $ backend_arg $ jobs_arg $ fuse_arg $ trace_arg $ metrics_arg)

let setup common =
  set_backend common.backend;
  (match common.jobs with None -> () | Some j -> Quantum.Parallel.set_jobs j);
  (match common.fuse with None -> () | Some b -> Quantum.Circuit_plan.set_fuse b);
  Quantum.Metrics.reset ();
  if common.trace then begin
    Logs.set_reporter (Logs_fmt.reporter ());
    Log.install_trace ()
  end

(* Invalid_argument out of the solvers is user-facing misconfiguration
   (bad HSP_BACKEND value, a register the chosen backend cannot hold,
   invalid instance parameters), not an internal error — report it as
   such instead of letting cmdliner print an uncaught-exception box. *)
let guard f =
  try f ()
  with Invalid_argument msg ->
    Printf.eprintf "hsp: %s\n" msg;
    2

(* Run the command body under [guard], then print the accumulated
   ledger if --metrics was given (even after a failed run: partial
   costs are still informative). *)
let finish common f =
  let code = guard f in
  if common.metrics then
    Format.printf "%a@." Quantum.Metrics.pp (Quantum.Metrics.snapshot ());
  code

let report inst gens =
  let ok = Group.subgroup_equal inst.Instances.group gens inst.Instances.hidden_gens in
  let c, q = Hiding.total_queries inst.Instances.hiding in
  Printf.printf "group order     : %d\n" (Group.order inst.Instances.group);
  Printf.printf "subgroup order  : %d\n"
    (List.length (Group.closure inst.Instances.group inst.Instances.hidden_gens));
  Printf.printf "quantum queries : %d\n" q;
  Printf.printf "classical queries: %d\n" c;
  Printf.printf "correct         : %b\n" ok;
  if ok then 0 else 1

let simon_cmd =
  let n_arg =
    Arg.(value & opt int 6 & info [ "n" ] ~doc:"Number of bits (group is Z_2^n).")
  in
  let mask_arg =
    Arg.(value & opt string "101010" & info [ "mask" ] ~doc:"Secret bit mask, e.g. 10110.")
  in
  let run common seed n mask =
    setup common;
    finish common @@ fun () ->
    let rng = rng_of_seed seed in
    let mask_bits =
      Array.init (String.length mask) (fun i -> Char.code mask.[i] - Char.code '0')
    in
    let n = if String.length mask = n then n else String.length mask in
    Printf.printf "Simon's problem on Z_2^%d, mask %s\n" n mask;
    let inst = Instances.simon ~n ~mask:mask_bits in
    let gens = Abelian_hsp.solve rng inst.Instances.group inst.Instances.hiding in
    List.iter
      (fun g ->
        Printf.printf "generator: %s\n"
          (String.concat "" (List.map string_of_int (Array.to_list g))))
      gens;
    report inst gens
  in
  Cmd.v
    (Cmd.info "solve-simon" ~doc:"Solve Simon's problem (Abelian HSP on Z_2^n).")
    Term.(const run $ common_arg $ seed_arg $ n_arg $ mask_arg)

let dihedral_cmd =
  let n_arg = Arg.(value & opt int 24 & info [ "n" ] ~doc:"D_n: the n-gon.") in
  let d_arg =
    Arg.(value & opt int 4 & info [ "d" ] ~doc:"Hidden normal rotation subgroup <s^d>; d | n.")
  in
  let run common seed n d =
    setup common;
    finish common @@ fun () ->
    let rng = rng_of_seed seed in
    Printf.printf "Hidden normal subgroup <s^%d> of D_%d (Theorem 8)\n" d n;
    let inst = Instances.dihedral_rotation ~n ~d in
    let res = Normal_hsp.solve rng inst.Instances.group inst.Instances.hiding in
    Printf.printf "factor group order: %d\n" res.Normal_hsp.quotient_order;
    report inst res.Normal_hsp.generators
  in
  Cmd.v
    (Cmd.info "solve-dihedral" ~doc:"Find a hidden normal rotation subgroup of D_n (Theorem 8).")
    Term.(const run $ common_arg $ seed_arg $ n_arg $ d_arg)

let heisenberg_cmd =
  let p_arg = Arg.(value & opt int 3 & info [ "p" ] ~doc:"Prime p; the group is H_p, order p^3.") in
  let run common seed p =
    setup common;
    finish common @@ fun () ->
    let rng = rng_of_seed seed in
    Printf.printf "HSP in the extra-special group H_%d (Theorem 11 / Corollary 12)\n" p;
    let inst = Instances.heisenberg_random rng ~p ~m:1 in
    let res = Small_commutator.solve rng inst.Instances.group inst.Instances.hiding in
    Printf.printf "|G'| = %d\n" res.Small_commutator.commutator_order;
    report inst res.Small_commutator.generators
  in
  Cmd.v
    (Cmd.info "solve-heisenberg" ~doc:"Solve a random HSP instance in an extra-special p-group.")
    Term.(const run $ common_arg $ seed_arg $ p_arg)

let wreath_cmd =
  let k_arg = Arg.(value & opt int 3 & info [ "k" ] ~doc:"The group is Z_2^k wr Z_2.") in
  let run common seed k =
    setup common;
    finish common @@ fun () ->
    let rng = rng_of_seed seed in
    Printf.printf "HSP in Z_2^%d wr Z_2 (Theorem 13, general case)\n" k;
    let inst = Instances.wreath_random rng ~k in
    let res =
      Elem_abelian2.solve_general rng inst.Instances.group ~n_gens:(Wreath.base_gens k)
        inst.Instances.hiding
    in
    Printf.printf "transversal size: %d\n" res.Elem_abelian2.transversal_size;
    report inst res.Elem_abelian2.generators
  in
  Cmd.v
    (Cmd.info "solve-wreath" ~doc:"Solve a random HSP instance in a wreath product (Theorem 13).")
    Term.(const run $ common_arg $ seed_arg $ k_arg)

let semidirect_cmd =
  let n_arg = Arg.(value & opt int 4 & info [ "n" ] ~doc:"Base Z_2^n.") in
  let m_arg = Arg.(value & opt int 4 & info [ "m" ] ~doc:"Cyclic top Z_m; m | n.") in
  let run common seed n m =
    setup common;
    finish common @@ fun () ->
    let rng = rng_of_seed seed in
    Printf.printf "HSP in Z_2^%d x| Z_%d (Theorem 13, cyclic factor)\n" n m;
    let inst = Instances.semidirect_random rng ~n ~m in
    let res =
      Elem_abelian2.solve_cyclic rng inst.Instances.group ~n_gens:(Semidirect.base_gens ~n)
        inst.Instances.hiding
    in
    Printf.printf "transversal size: %d (|G/N| = %d)\n" res.Elem_abelian2.transversal_size
      res.Elem_abelian2.quotient_order;
    report inst res.Elem_abelian2.generators
  in
  Cmd.v
    (Cmd.info "solve-semidirect"
       ~doc:"Solve a random HSP instance in Z_2^n x| Z_m (Theorem 13, polynomial case).")
    Term.(const run $ common_arg $ seed_arg $ n_arg $ m_arg)

let abelian_cmd =
  let dims_arg =
    Arg.(
      value
      & opt string "8192,8192"
      & info [ "dims" ]
          ~doc:
            "Comma-separated cyclic factors: the group is Z_d1 x ... x Z_dr.  A factor \
             written $(b,b^k) expands to k copies of b, so --dims 2^200 is Z_2^200.")
  in
  let moduli_arg =
    Arg.(
      value
      & opt string "64,128"
      & info [ "moduli" ]
          ~doc:
            "Comma-separated m_i with m_i | d_i; the hidden subgroup is \
             H = m_1 Z_d1 x ... x m_r Z_dr and the oracle is f(x) = (x_i mod m_i).  \
             The $(b,b^k) repeat syntax of --dims works here too.")
  in
  let parse_ints label s =
    try
      let parts = String.split_on_char ',' s in
      if parts = [] then invalid_arg label;
      (* "b^k" expands to k copies of b, so cryptographic shapes like
         2^200 stay readable on the command line. *)
      let expand t =
        let t = String.trim t in
        match String.index_opt t '^' with
        | None -> [ int_of_string t ]
        | Some i ->
            let b = int_of_string (String.sub t 0 i) in
            let k = int_of_string (String.sub t (i + 1) (String.length t - i - 1)) in
            if k < 0 || k > 100_000 then failwith "repeat count out of range";
            List.init k (fun _ -> b)
      in
      Array.of_list (List.concat_map expand parts)
    with _ ->
      invalid_arg
        (Printf.sprintf
           "%s: expected comma-separated integers (b^k repeats b k times), got %S" label s)
  in
  let run common seed dims_s moduli_s =
    setup common;
    finish common @@ fun () ->
    let rng = rng_of_seed seed in
    let dims = parse_ints "--dims" dims_s in
    let moduli = parse_ints "--moduli" moduli_s in
    let r = Array.length dims in
    if Array.length moduli <> r then begin
      Printf.eprintf "error: --dims and --moduli must have the same length\n";
      exit 2
    end;
    Array.iteri
      (fun i m ->
        if m < 1 || dims.(i) < 1 || dims.(i) mod m <> 0 then begin
          Printf.eprintf "error: need 1 <= m_%d and m_%d | d_%d (got m=%d, d=%d)\n" i i i m
            dims.(i);
          exit 2
        end)
      moduli;
    (* Sizes in this command routinely overflow an int (that is the
       point of the symbolic backend), so every size is reported as an
       exact integer when formable and as a power of two otherwise. *)
    let total = Quantum.Backend.total_of_opt dims in
    let log2_of a = Array.fold_left (fun acc d -> acc +. (log (float_of_int d) /. log 2.)) 0. a in
    let size_str total log2 =
      match total with
      | Some t -> string_of_int t
      | None -> Printf.sprintf "2^%.1f" log2
    in
    (* Ground truth as subgroup structure: H = <m_i e_i> in canonical
       HNF form.  This is what the symbolic sampler consumes, what the
       order reports come from, and what the recovered generators are
       checked against — at any size, no enumeration anywhere. *)
    let sub_gens =
      List.init r (fun i ->
          Array.init r (fun j -> if i = j then moduli.(i) mod dims.(i) else 0))
    in
    let truth = Quantum.Backend_symbolic.Subgroup.of_gens ~dims sub_gens in
    let h_log2 = Quantum.Backend_symbolic.Subgroup.order_log2 truth in
    let h_order = Quantum.Backend_symbolic.Subgroup.order_int truth in
    let show a = String.concat "," (List.map string_of_int (Array.to_list a)) in
    Printf.printf "Abelian HSP on Z_{%s}, |G| = %s%s\n" dims_s (size_str total (log2_of dims))
      (match total with
      | None -> " (beyond integer range; symbolic backend only)"
      | Some t when t > Quantum.State.max_total_dim -> " (beyond the dense 2^24 cap)"
      | Some _ -> "");
    Printf.printf "hidden H = prod m_i Z_{d_i}, moduli (%s), |H| = %s\n" moduli_s
      (size_str h_order h_log2);
    Printf.printf "backend         : %s\n"
      (Quantum.Backend.choice_to_string (Quantum.Backend.default ()));
    let symbolic =
      match Quantum.Backend.default () with Quantum.Backend.Symbolic -> true | _ -> false
    in
    let queries = Quantum.Query.create () in
    let draw =
      if symbolic then
        (* Generator-level oracle: one round is O(r^2) however large
           the group — this is what runs Z_2^200 in milliseconds. *)
        Quantum.Coset_state.sampler_with_subgroup ~backend:Quantum.Backend.Symbolic ~dims
          ~subgroup:sub_gens ~queries ()
      else begin
        (* Amplitude-level differential path: the planted instance
           knows H, so it hands the simulator the coset of a point
           directly; cost per round is O(|H|) instead of the O(|G|)
           oracle expansion (still one quantum query). *)
        let coset x0 =
          let rec go i acc =
            if i < 0 then acc
            else
              let reps = dims.(i) / moduli.(i) in
              let choices =
                List.init reps (fun k -> (x0.(i) + (k * moduli.(i))) mod dims.(i))
              in
              go (i - 1)
                (List.concat_map (fun suffix -> List.map (fun c -> c :: suffix) choices) acc)
          in
          List.map Array.of_list (go (r - 1) [ [] ])
        in
        Quantum.Coset_state.sampler_with_support ~dims ~coset ~queries ()
      end
    in
    let in_h x = Array.for_all2 (fun xi m -> xi mod m = 0) x moduli in
    let f x = Quantum.Backend.encode moduli (Array.map2 (fun xi m -> xi mod m) x moduli) in
    let t0 = Unix.gettimeofday () in
    let gens, outcome =
      Abelian_hsp.solve_dims rng ~draw ~dims ~f ~quantum:queries ~verify:in_h ()
    in
    let seconds = Unix.gettimeofday () -. t0 in
    let n_gens = List.length gens in
    List.iteri
      (fun i g ->
        if i < 8 then Printf.printf "generator: (%s)\n" (show g)
        else if i = 8 then Printf.printf "... (%d more generators)\n" (n_gens - 8))
      gens;
    (* Ground truth is known in closed form: the recovered generators
       must lie in H (checked by [verify] already) and generate all of
       it.  Canonical-HNF equality decides "generates exactly H" in
       O(r^2) at any size — no closure enumeration, so the check also
       runs (and is exact) at Z_2^200. *)
    let ok =
      List.for_all in_h gens
      && Quantum.Backend_symbolic.Subgroup.equal
           (Quantum.Backend_symbolic.Subgroup.of_gens ~dims gens)
           truth
    in
    Printf.printf "rounds          : %d\n" outcome.Abelian_hsp.rounds;
    Printf.printf "quantum queries : %d\n" (Quantum.Query.count queries);
    Printf.printf "seconds         : %.3f\n" seconds;
    Printf.printf "correct         : %b\n" ok;
    if ok then 0 else 1
  in
  Cmd.v
    (Cmd.info "solve-abelian"
       ~doc:
         "Solve a planted Abelian HSP on Z_d1 x ... x Z_dr with hidden subgroup \
          prod m_i Z_di.  With --backend sparse (or auto), group sizes far beyond the \
          dense 2^24 amplitude cap are simulable, because coset states and their Fourier \
          transforms have support |H| and |G|/|H| restricted to a small product grid.  \
          With --backend symbolic the simulation is amplitude-free (closed-form coset \
          algebra) and cryptographic sizes such as --dims 2^200 run in milliseconds per \
          sample, exactly.")
    Term.(const run $ common_arg $ seed_arg $ dims_arg $ moduli_arg)

let dicyclic_cmd =
  let n_arg = Arg.(value & opt int 4 & info [ "n" ] ~doc:"The group is Q_4n.") in
  let run common seed n =
    setup common;
    finish common @@ fun () ->
    let rng = rng_of_seed seed in
    Printf.printf "HSP in the dicyclic group Q_%d (Theorem 11; |G'| = %d)\n" (4 * n) n;
    let inst = Instances.dicyclic_random rng ~n in
    let res = Small_commutator.solve rng inst.Instances.group inst.Instances.hiding in
    report inst res.Small_commutator.generators
  in
  Cmd.v
    (Cmd.info "solve-dicyclic" ~doc:"Solve a random HSP instance in a dicyclic group (Theorem 11).")
    Term.(const run $ common_arg $ seed_arg $ n_arg)

let frobenius_cmd =
  let p_arg = Arg.(value & opt int 7 & info [ "p" ] ~doc:"Prime base Z_p.") in
  let q_arg = Arg.(value & opt int 3 & info [ "q" ] ~doc:"Prime top Z_q; q | p-1.") in
  let run common seed p q =
    setup common;
    finish common @@ fun () ->
    let rng = rng_of_seed seed in
    Printf.printf "Hidden translation subgroup of the Frobenius group Z_%d x| Z_%d (Theorem 8)\n"
      p q;
    let inst = Instances.frobenius_translations ~p ~q in
    let res = Normal_hsp.solve rng inst.Instances.group inst.Instances.hiding in
    Printf.printf "factor group order: %d\n" res.Normal_hsp.quotient_order;
    report inst res.Normal_hsp.generators
  in
  Cmd.v
    (Cmd.info "solve-frobenius"
       ~doc:"Find the hidden normal translation subgroup of a Frobenius group (Theorem 8).")
    Term.(const run $ common_arg $ seed_arg $ p_arg $ q_arg)

let factor_cmd =
  let n_arg = Arg.(required & pos 0 (some int) None & info [] ~docv:"N") in
  let run common seed n =
    setup common;
    finish common @@ fun () ->
    let rng = rng_of_seed seed in
    match Quantum.Shor.factor rng n with
    | Some (a, b) ->
        Printf.printf "%d = %d * %d\n" n a b;
        0
    | None ->
        Printf.printf "attempts exhausted\n";
        1
    | exception Invalid_argument msg ->
        Printf.printf "error: %s\n" msg;
        2
  in
  Cmd.v
    (Cmd.info "factor" ~doc:"Factor an integer with simulated Shor order finding.")
    Term.(const run $ common_arg $ seed_arg $ n_arg)

let dlog_cmd =
  let p_arg = Arg.(value & opt int 101 & info [ "p" ] ~doc:"Prime modulus.") in
  let g_arg = Arg.(value & opt int 2 & info [ "g" ] ~doc:"Base.") in
  let h_arg = Arg.(value & opt int 55 & info [ "target" ] ~doc:"Target element h.") in
  let run common seed p g h =
    setup common;
    finish common @@ fun () ->
    let rng = rng_of_seed seed in
    match Dlog.discrete_log rng ~p ~g ~h with
    | Some l ->
        Printf.printf "log_%d(%d) mod %d = %d\n" g h p l;
        0
    | None ->
        Printf.printf "%d is not in <%d> mod %d\n" h g p;
        1
  in
  Cmd.v
    (Cmd.info "dlog" ~doc:"Discrete logarithm in Z_p^* via Abelian Fourier sampling.")
    Term.(const run $ common_arg $ seed_arg $ p_arg $ g_arg $ h_arg)

let check_circuit_cmd =
  let n_arg =
    Arg.(value & opt int 6 & info [ "n" ] ~doc:"Number of qubits of the QFT circuit to check.")
  in
  let approx_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "approx" ] ~docv:"T"
          ~doc:
            "Check the approximate QFT instead: controlled rotations $(b,rk k) with \
             k > $(docv) are dropped (Coppersmith's construction).")
  in
  let run common n approx =
    setup common;
    finish common @@ fun () ->
    (match approx with
    | None -> Printf.printf "Static check: exact QFT on %d qubits\n" n
    | Some t -> Printf.printf "Static check: approximate QFT on %d qubits (threshold %d)\n" n t);
    if n < 1 then begin
      Printf.eprintf "hsp: --n must be >= 1\n";
      2
    end
    else
      match Analysis.Circuit_check.check_qft ?approx_threshold:approx n with
      | Ok r ->
          Format.printf "%a@." Analysis.Circuit_check.pp_report r;
          let budget =
            match approx with
            | None -> Analysis.Circuit_check.qft_exact_gate_count n
            | Some t -> Analysis.Circuit_check.qft_approx_gate_count ~threshold:t n
          in
          Printf.printf "closed-form gate budget: %d\n" budget;
          (* the fused plan the circuit would run under HSP_FUSE=1,
             cross-checked symbolically against the gate sequence *)
          let c = Quantum.Circuit.qft ?approx_threshold:approx n in
          let plan = Quantum.Circuit.compile c in
          Printf.printf "fused plan     : %d gates -> %d steps, %d bytes\n"
            (Quantum.Circuit_plan.gate_count plan)
            (Quantum.Circuit_plan.step_count plan)
            (Quantum.Circuit_plan.bytes plan);
          List.iter
            (fun (k, v) -> Printf.printf "  %-12s %s\n" k v)
            (Quantum.Circuit_plan.stats plan);
          (match Analysis.Circuit_check.check_plan c plan with
          | Ok () ->
              Printf.printf "plan verdict   : plan == circuit (symbolic)\n";
              Printf.printf "verdict        : well-formed\n";
              0
          | Error vs ->
              List.iter
                (fun v -> Format.printf "%a@." Analysis.Circuit_check.pp_plan_violation v)
                vs;
              Printf.printf "verdict        : %d plan violation(s)\n" (List.length vs);
              1)
      | Error vs ->
          List.iter (fun v -> Format.printf "%a@." Analysis.Circuit_check.pp_violation v) vs;
          Printf.printf "verdict        : %d violation(s)\n" (List.length vs);
          1
  in
  Cmd.v
    (Cmd.info "check-circuit"
       ~doc:
         "Statically validate the QFT circuit builder: wire ranges, per-gate unitarity, \
          gate/rotation counts against the closed-form Coppersmith budgets, and the \
          fused execution plan against the gate sequence \
          (Analysis.Circuit_check.check_plan).  No simulation is performed.")
    Term.(const run $ common_arg $ n_arg $ approx_arg)

let order_cmd =
  let modulus_arg = Arg.(value & opt int 77 & info [ "modulus" ] ~doc:"Modulus N.") in
  let base_arg = Arg.(value & opt int 2 & info [ "base" ] ~doc:"Element of Z_N^*.") in
  let run common seed modulus base =
    setup common;
    finish common @@ fun () ->
    let rng = rng_of_seed seed in
    let queries = Quantum.Query.create () in
    match
      Quantum.Shor.find_order rng
        ~pow:(fun k -> Numtheory.Arith.powmod base k modulus)
        ~order_bound:modulus ~queries
    with
    | Some o ->
        Printf.printf "ord(%d mod %d) = %d  (%d quantum queries)\n" base modulus o
          (Quantum.Query.count queries);
        0
    | None ->
        Printf.printf "did not converge\n";
        1
  in
  Cmd.v
    (Cmd.info "order" ~doc:"Multiplicative order via simulated Shor period finding.")
    Term.(const run $ common_arg $ seed_arg $ modulus_arg $ base_arg)

let () =
  (* HSP_DEBUG=1 turns on solver-internal debug logging *)
  if Sys.getenv_opt "HSP_DEBUG" <> None then begin
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.Src.set_level Hsp.Log.src (Some Logs.Debug)
  end;
  let doc = "Quantum algorithms for non-Abelian hidden subgroup problems (simulated)." in
  let info = Cmd.info "hsp" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            simon_cmd; abelian_cmd; dihedral_cmd; heisenberg_cmd; wreath_cmd; semidirect_cmd;
            dicyclic_cmd; frobenius_cmd; factor_cmd; dlog_cmd; order_cmd; check_circuit_cmd;
          ]))
