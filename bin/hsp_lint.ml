(* Source-level lint driver (see Analysis.Lint for the rules).

     hsp_lint [DIR | FILE.ml] ...     defaults to: lib

   Walks the given roots for .ml files, applies the per-path rule
   configuration (poly-compare/poly-eq under lib/group and lib/core,
   print-stdout everywhere outside bin/ bench/ test/ examples/), prints
   every finding and exits 1 if there are any.  Run by `dune runtest`
   via the root dune rule and by the CI lint job. *)

let rec files path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list
    |> List.concat_map (fun entry -> files (Filename.concat path entry))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

let () =
  let roots = match List.tl (Array.to_list Sys.argv) with [] -> [ "lib" ] | r -> r in
  let ml_files = List.concat_map files roots |> List.sort String.compare in
  let errors = ref 0 in
  let findings =
    List.concat_map
      (fun f ->
        try Analysis.Lint.lint_file f
        with Failure msg ->
          incr errors;
          Printf.eprintf "hsp_lint: %s\n" msg;
          [])
      ml_files
  in
  List.iter (fun f -> Format.printf "%a@." Analysis.Lint.pp_finding f) findings;
  Format.printf "hsp_lint: %d file(s) checked, %d finding(s)@." (List.length ml_files)
    (List.length findings);
  exit (match (findings, !errors) with [], 0 -> 0 | _ -> 1)
