(* Source-level lint driver (see Analysis.Lint and Analysis.Race_check
   for the rules).

     hsp_lint [DIR | FILE.ml] ...     defaults to: lib

   Walks the given roots for .ml files, applies each pass's per-path
   rule configuration (value-semantics rules from Lint, the concurrency
   rules from Race_check), prints every finding and exits 1 if there
   are any.  Run by `dune runtest` via the root dune rule and by the CI
   lint job. *)

let rec files path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list
    |> List.concat_map (fun entry -> files (Filename.concat path entry))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

let () =
  let roots = match List.tl (Array.to_list Sys.argv) with [] -> [ "lib" ] | r -> r in
  let ml_files = List.concat_map files roots |> List.sort String.compare in
  let errors = ref 0 in
  let count = ref 0 in
  let check lint_file pp f =
    try
      let findings = lint_file f in
      count := !count + List.length findings;
      List.iter (fun fi -> Format.printf "%a@." pp fi) findings
    with Failure msg ->
      incr errors;
      Printf.eprintf "hsp_lint: %s\n" msg
  in
  List.iter
    (fun f ->
      check (fun f -> Analysis.Lint.lint_file f) Analysis.Lint.pp_finding f;
      check (fun f -> Analysis.Race_check.lint_file f) Analysis.Race_check.pp_finding f)
    ml_files;
  Format.printf "hsp_lint: %d file(s) checked, %d finding(s)@." (List.length ml_files)
    !count;
  exit (if !count = 0 && !errors = 0 then 0 else 1)
