(* hsp_served — the HSP-as-a-service daemon.

     hsp_served serve --socket /tmp/hsp.sock --cache-entries 64 --cache-mb 256
     hsp_served client --socket /tmp/hsp.sock --json '{"op":"sample","dims":["2^200"],"moduli":["2^100","1^100"],"count":4}'
     hsp_served smoke

   [serve] runs the daemon on a Unix socket speaking the
   length-prefixed JSON protocol of lib/service: solve / sample /
   check-circuit / stats / shutdown, with prep artifacts (CSR coset
   buckets, canonicalised HNF subgroups) cached across requests and
   concurrent sample requests batched against the same prep.  [client]
   sends one request and prints the reply.  [smoke] hosts a daemon on a
   temporary socket and drives the CI scenario against it: one request
   per backend route including a 2^120 symbolic instance, cache-hit
   assertions on a second pass, malformed-input survival, clean
   shutdown. *)

open Hsp_service
open Cmdliner

let socket_arg =
  let doc = "Unix-domain socket path." in
  Arg.(value & opt string "/tmp/hsp_served.sock" & info [ "socket"; "s" ] ~doc ~docv:"PATH")

let jobs_arg =
  let doc = "Worker domains for the dense backend's parallel kernels." in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~doc ~docv:"N")

let set_jobs = function None -> () | Some j -> Quantum.Parallel.set_jobs j

(* ------------------------------------------------------------------ *)
(* serve                                                               *)
(* ------------------------------------------------------------------ *)

let serve_cmd =
  let cache_entries =
    let doc = "Artifact cache capacity in entries." in
    Arg.(value & opt int 64 & info [ "cache-entries" ] ~doc ~docv:"N")
  in
  let cache_mb =
    let doc = "Artifact cache capacity in approximate megabytes." in
    Arg.(value & opt int 256 & info [ "cache-mb" ] ~doc ~docv:"MB")
  in
  let seed =
    let doc = "Base PRNG seed for requests that do not carry their own." in
    Arg.(value & opt int 2026 & info [ "seed" ] ~doc)
  in
  let run socket cache_entries cache_mb seed jobs =
    set_jobs jobs;
    let service =
      Service.create ~cache_entries ~cache_bytes:(cache_mb * 1024 * 1024) ~seed ()
    in
    Printf.printf "hsp_served: listening on %s\n%!" socket;
    Server.run ~socket_path:socket service;
    Printf.printf "hsp_served: shut down cleanly\n%!";
    0
  in
  let info = Cmd.info "serve" ~doc:"Run the HSP daemon on a Unix socket." in
  Cmd.v info Term.(const run $ socket_arg $ cache_entries $ cache_mb $ seed $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* client                                                              *)
(* ------------------------------------------------------------------ *)

let client_cmd =
  let json_arg =
    let doc = "Request JSON (read from stdin when omitted)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~doc ~docv:"JSON")
  in
  let run socket json =
    let payload =
      match json with
      | Some s -> s
      | None -> In_channel.input_all In_channel.stdin
    in
    match Jsonv.of_string payload with
    | Error msg ->
        Printf.eprintf "hsp_served client: request is not valid JSON: %s\n" msg;
        2
    | Ok req -> (
        match Server.connect ~socket_path:socket with
        | exception Unix.Unix_error (err, _, _) ->
            Printf.eprintf "hsp_served client: cannot connect to %s: %s\n" socket
              (Unix.error_message err);
            1
        | fd ->
            Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            @@ fun () ->
            let reply = Server.request fd req in
            print_endline (Jsonv.to_string reply);
            (match Jsonv.member "ok" reply with Some (Jsonv.Bool true) -> 0 | _ -> 1))
  in
  let info = Cmd.info "client" ~doc:"Send one request to a running daemon." in
  Cmd.v info Term.(const run $ socket_arg $ json_arg)

(* ------------------------------------------------------------------ *)
(* smoke                                                               *)
(* ------------------------------------------------------------------ *)

let smoke_cmd =
  let run jobs =
    set_jobs jobs;
    let socket =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "hsp_served_smoke_%d.sock" (Unix.getpid ()))
    in
    let failures = ref 0 in
    let check name cond =
      if cond then Printf.printf "ok   %s\n%!" name
      else begin
        incr failures;
        Printf.printf "FAIL %s\n%!" name
      end
    in
    let service = Service.create ~seed:7 () in
    let server_thread = Server.run_in_background ~socket_path:socket service in
    let obj fields = Jsonv.Obj fields in
    let str s = Jsonv.String s in
    let bool_at path reply =
      let rec go v = function
        | [] -> Jsonv.to_bool_opt v
        | k :: rest -> Option.bind (Jsonv.member k v) (fun v' -> go v' rest)
      in
      go reply path
    in
    let is_ok reply = bool_at [ "ok" ] reply = Some true in
    let cache_hit reply = bool_at [ "cache"; "hit" ] reply = Some true in
    let fd = Server.connect ~socket_path:socket in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        (* one instance per backend route *)
        let dense =
          [ ("dims", Jsonv.List [ Jsonv.Int 8; Jsonv.Int 8 ]);
            ("moduli", Jsonv.List [ Jsonv.Int 4; Jsonv.Int 2 ]);
            ("backend", str "dense") ]
        in
        let sparse =
          [ ("dims", Jsonv.List [ str "2^16" ]);
            ("moduli", Jsonv.List [ str "2^8"; str "1^8" ]);
            ("backend", str "sparse") ]
        in
        let symbolic =
          [ ("dims", Jsonv.List [ str "2^120" ]);
            ("moduli", Jsonv.List [ str "2^60"; str "1^60" ]) ]
        in
        List.iter
          (fun (name, inst) ->
            let reply =
              Server.request fd (obj (("op", str "check-circuit") :: inst))
            in
            check (name ^ " check-circuit ok") (is_ok reply))
          [ ("dense", dense); ("sparse", sparse); ("symbolic", symbolic) ];
        (* symbolic route must resolve for the >= 2^100 instance *)
        let reply = Server.request fd (obj (("op", str "check-circuit") :: symbolic)) in
        check "2^120 routes symbolic"
          (match Jsonv.member "route" reply with
          | Some (Jsonv.String "symbolic") -> true
          | _ -> false);
        (* first pass: misses; second pass: hits *)
        List.iter
          (fun (name, inst) ->
            let req = obj (("op", str "sample") :: ("count", Jsonv.Int 4) :: inst) in
            let cold = Server.request fd req in
            check (name ^ " sample ok") (is_ok cold);
            check (name ^ " cold pass misses cache") (not (cache_hit cold));
            let warm = Server.request fd req in
            check (name ^ " warm pass hits cache") (is_ok warm && cache_hit warm))
          [ ("dense", dense); ("sparse", sparse); ("symbolic", symbolic) ];
        (* solve on the symbolic instance, verified in closed form *)
        let reply =
          Server.request fd (obj (("op", str "solve") :: ("seed", Jsonv.Int 5) :: symbolic))
        in
        check "2^120 solve verified" (is_ok reply && bool_at [ "verified" ] reply = Some true);
        (* malformed requests get structured errors; connection survives *)
        Protocol.write_frame fd "this is not json";
        (match Protocol.read_frame fd with
        | Some payload ->
            check "malformed JSON -> structured error"
              (match Jsonv.of_string payload with
              | Ok reply -> bool_at [ "ok" ] reply = Some false
              | Error _ -> false)
        | None -> check "malformed JSON -> structured error" false);
        let reply = Server.request fd (obj [ ("op", str "frobnicate") ]) in
        check "unknown op -> structured error, connection alive" (not (is_ok reply));
        let reply =
          Server.request fd
            (obj
               [ ("op", str "sample");
                 ("dims", Jsonv.List [ Jsonv.Int 8 ]);
                 ("moduli", Jsonv.List [ Jsonv.Int 3 ]) ])
        in
        check "invalid moduli -> rejected"
          (match Jsonv.member "error" reply with
          | Some err -> (
              match Jsonv.member "kind" err with
              | Some (Jsonv.String "rejected") -> true
              | _ -> false)
          | None -> false);
        (* stats: cache populated, hits recorded *)
        let reply = Server.request fd (obj [ ("op", str "stats") ]) in
        let stat_int path =
          let rec go v = function
            | [] -> Jsonv.to_int_opt v
            | k :: rest -> Option.bind (Jsonv.member k v) (fun v' -> go v' rest)
          in
          go reply path
        in
        check "stats: 3 cached artifacts" (stat_int [ "cache"; "entries" ] = Some 3);
        check "stats: cache hits recorded"
          (match stat_int [ "cache"; "hits" ] with Some h -> h >= 3 | None -> false);
        let reply = Server.request fd (obj [ ("op", str "shutdown") ]) in
        check "shutdown acknowledged" (is_ok reply));
    Thread.join server_thread;
    check "socket removed on shutdown" (not (Sys.file_exists socket));
    if !failures = 0 then begin
      Printf.printf "smoke: all checks passed\n";
      0
    end
    else begin
      Printf.printf "smoke: %d check(s) FAILED\n" !failures;
      1
    end
  in
  let info =
    Cmd.info "smoke"
      ~doc:
        "Host a daemon on a temporary socket and drive the CI scenario: every backend \
         route incl. a 2^120 symbolic instance, cache hits on the second pass, \
         malformed-input survival, clean shutdown."
  in
  Cmd.v info Term.(const run $ jobs_arg)

let main =
  let doc = "cached, batched HSP sampling and solving as a daemon" in
  let info = Cmd.info "hsp_served" ~version:"%%VERSION%%" ~doc in
  Cmd.group info [ serve_cmd; client_cmd; smoke_cmd ]

let () = exit (Cmd.eval' main)
